"""Runtime power re-coordination — the paper's stated future work.

Section VII: "One limitation of this work is that CLIP doesn't directly
support jobs launched with predefined node and core counts.  We plan to
develop a runtime system to address this issue."  This module is that
runtime system, built on the same fitted models:

* a job is launched with a *fixed* decomposition (node count, and
  optionally thread count) that the runtime must respect — the common
  case for production MPI jobs whose data decomposition is baked in;
* the runtime executes the job in **segments** and accepts budget
  changes between segments (machine-room events: another job arrived,
  a demand-response window opened);
* on every budget change it re-coordinates: re-splits per-node budgets
  (variability-aware), re-splits CPU/DRAM within nodes, and — only if
  the caller allows it — re-throttles concurrency when the budget drops
  below the acceptable range of the pinned thread count.

Re-coordination is **transactional**: the new thread count and cap set
are computed and validated in full before any job field changes, so a
rejected budget (:class:`~repro.errors.InfeasibleBudgetError`) leaves
the job exactly as it was — caps, budget, and concurrency stay
mutually consistent.

The runtime is also the failure domain for its jobs.  When a node
fails (:meth:`PowerBoundedRuntime.fail_node`), every affected job
either *shrinks* onto its surviving nodes — its fixed budget re-split
over fewer parts, allowed only when the job was launched with
``allow_shrink`` — or is *parked* with a typed reason; parked jobs
reject :meth:`~PowerBoundedRuntime.advance` with
:class:`~repro.errors.NodeFailureError` until
:meth:`~PowerBoundedRuntime.recover_node` brings their nodes back.
Every cap set the runtime commits is audited by the shared
:class:`~repro.core.monitor.BudgetInvariantMonitor`.

The runtime re-coordinates after a node degradation event
(:meth:`SimulatedCluster.degrade_node`) as well, re-measuring node
factors so the weakened part receives compensating power.

Two resilience layers wrap all of the above:

* **verified actuation** — every cap set the runtime commits is
  physically written to the nodes' RAPL interfaces through the
  verified write path (readback + bounded retry + backoff); a write
  that will not stick raises :class:`~repro.errors.ActuationError`
  *transactionally* — the hardware is rolled back to its snapshot and
  the job left bit-identical, the same contract a rejected budget
  already honours;
* **journaling** — when constructed with a journal path, every state
  transition (launch / cap-commit / budget-change / park / recover /
  segment) is appended to a :class:`~repro.core.journal.RuntimeJournal`
  after it commits, and :meth:`PowerBoundedRuntime.restore` replays
  the log into a bit-identical runtime after a crash.

A :class:`~repro.core.watchdog.PowerEnforcementWatchdog` may attach to
the runtime to compare measured draw against the committed caps after
every segment and drive corrective re-coordination through the same
transactional paths.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.core.coordination import coordinate_power, measure_node_factors
from repro.core.journal import RuntimeJournal
from repro.core.monitor import BudgetInvariantMonitor
from repro.core.recommend import Recommender
from repro.core.scheduler import ClipScheduler
from repro.errors import (
    ActuationError,
    InfeasibleBudgetError,
    NodeFailureError,
    SchedulingError,
)
from repro.sim.engine import ExecutionConfig
from repro.workloads.characteristics import (
    CommPattern,
    Phase,
    WorkloadCharacteristics,
)

__all__ = ["SegmentRecord", "RunningJob", "PowerBoundedRuntime"]


def _app_to_dict(app: WorkloadCharacteristics) -> dict:
    """JSON-safe full serialization of a workload record."""
    d = asdict(app)
    d["comm_pattern"] = app.comm_pattern.value
    return d


def _app_from_dict(d: dict) -> WorkloadCharacteristics:
    """Inverse of :func:`_app_to_dict` (exact: floats round-trip)."""
    d = dict(d)
    d["comm_pattern"] = CommPattern(d["comm_pattern"])
    d["phases"] = tuple(Phase(**p) for p in d.get("phases", ()))
    return WorkloadCharacteristics(**d)


def _bound_from_json(value):
    """Audit bound back from JSON: lists become per-rank tuples."""
    if isinstance(value, list):
        return tuple(float(x) for x in value)
    return value


def _split_caps(power, budget_w: float, n_threads: int) -> tuple[float, ...]:
    """Class-aware split of one node's budget into its domain caps.

    CPU classes keep the two-way host split; accelerator classes grant
    the device the highest ladder level that fits after the host floor
    is reserved (host-only apps get exactly the board idle draw) and
    split the remainder, so the cap tuple's arity always matches the
    node's hardware class.
    """
    lo_w, hi_w = power.gpu_power_range()
    if hi_w <= 0.0:
        return power.split_node_budget(budget_w, n_threads)
    rng = power.power_range(n_threads)
    grant_w = lo_w
    window_hi_w = budget_w - (rng.cpu_lo_w + rng.mem_lo_w)
    for cap_w, _clock_hz in power.gpu_shift_candidates(lo_w, window_hi_w):
        grant_w = max(grant_w, cap_w)
    return power.split_node_budget_gpu(budget_w, n_threads, grant_w)


@dataclass(frozen=True)
class SegmentRecord:
    """One executed segment of a running job."""

    iterations: int
    budget_w: float
    n_threads: int
    time_s: float
    energy_j: float
    performance: float


@dataclass
class RunningJob:
    """A job mid-execution under the runtime's control.

    ``node_ids`` starts as the launch decomposition and only changes if
    a node failure shrinks the job (``allow_shrink``); ``parked`` marks
    a job sidelined by a failure it could not absorb — the runtime
    refuses to advance it until recovery, recording why in
    ``park_reason``.
    """

    app: WorkloadCharacteristics
    n_nodes: int
    n_threads: int
    node_ids: tuple[int, ...]
    budget_w: float
    per_node_caps: tuple[tuple[float, float], ...]
    remaining_iterations: int
    allow_concurrency_change: bool = False
    allow_shrink: bool = False
    parked: bool = False
    park_reason: str | None = None
    segments: list[SegmentRecord] = field(default_factory=list)

    @property
    def done(self) -> bool:
        """Whether every iteration has been executed."""
        return self.remaining_iterations <= 0

    @property
    def elapsed_s(self) -> float:
        """Total simulated time across executed segments."""
        return sum(s.time_s for s in self.segments)

    @property
    def energy_j(self) -> float:
        """Total energy across executed segments."""
        return sum(s.energy_j for s in self.segments)

    @property
    def mean_performance(self) -> float:
        """Iterations per second over everything executed so far."""
        iters = sum(s.iterations for s in self.segments)
        return iters / self.elapsed_s if self.elapsed_s > 0 else 0.0


class PowerBoundedRuntime:
    """Executes jobs in segments and re-coordinates power on the fly."""

    def __init__(
        self,
        scheduler: ClipScheduler,
        journal: RuntimeJournal | str | Path | None = None,
    ):
        self._scheduler = scheduler
        self._engine = scheduler.engine
        self._factors = scheduler.node_factors
        self._jobs: list[RunningJob] = []
        if journal is not None and not isinstance(journal, RuntimeJournal):
            journal = RuntimeJournal(journal)
        self._journal = journal
        self._watchdog = None

    @property
    def scheduler(self) -> ClipScheduler:
        """The CLIP scheduler whose models the runtime reuses."""
        return self._scheduler

    @property
    def monitor(self) -> BudgetInvariantMonitor:
        """The shared budget-invariant auditor (the pipeline's ledger)."""
        return self._scheduler.pipeline.monitor

    @property
    def journal(self) -> RuntimeJournal | None:
        """The write-ahead journal, when crash recovery is enabled."""
        return self._journal

    @property
    def watchdog(self):
        """The attached enforcement watchdog, if any."""
        return self._watchdog

    def attach_watchdog(self, watchdog) -> None:
        """Hook a watchdog in; it is consulted after every segment."""
        self._watchdog = watchdog

    @property
    def jobs(self) -> tuple[RunningJob, ...]:
        """Every job launched through this runtime, in launch order."""
        return tuple(self._jobs)

    def _job_index(self, job: RunningJob) -> int:
        for i, j in enumerate(self._jobs):
            if j is job:
                return i
        return len(self._jobs)  # being launched right now

    def _journal_write(self, kind: str, payload: dict) -> None:
        if self._journal is not None:
            self._journal.append(kind, payload)

    # ------------------------------------------------------------------

    def _models(self, app: WorkloadCharacteristics) -> Recommender:
        """The app's fitted recommendation engine (shared bundle cache)."""
        return self._scheduler.pipeline.bundle_for(app).recommender

    def launch(
        self,
        app: WorkloadCharacteristics,
        budget_w: float,
        n_nodes: int,
        n_threads: int | None = None,
        allow_concurrency_change: bool = False,
        allow_shrink: bool = False,
    ) -> RunningJob:
        """Admit a job with a predefined decomposition.

        ``n_nodes`` is fixed for the job's lifetime (the MPI
        decomposition); ``n_threads`` defaults to the class rule's
        unbounded choice and is only revisited later if
        ``allow_concurrency_change`` is set.  ``allow_shrink`` permits
        the runtime to re-split the job onto surviving nodes after a
        node failure instead of parking it.
        """
        cluster = self._engine.cluster
        if not 1 <= n_nodes <= cluster.n_nodes:
            raise SchedulingError(
                f"n_nodes {n_nodes} outside [1, {cluster.n_nodes}]"
            )
        node_ids = cluster.available_node_ids[:n_nodes]
        if len(node_ids) < n_nodes:
            raise NodeFailureError(
                f"{n_nodes} nodes requested but only "
                f"{cluster.n_available} are in service"
            )
        recommender = self._models(app)
        if n_threads is None:
            n_threads = recommender.unbounded_concurrency()
        job = RunningJob(
            app=app,
            n_nodes=n_nodes,
            n_threads=n_threads,
            node_ids=node_ids,
            budget_w=budget_w,
            per_node_caps=(),
            remaining_iterations=app.iterations,
            allow_concurrency_change=allow_concurrency_change,
            allow_shrink=allow_shrink,
        )
        payload = self._recoordinate(job, recommender, journal_kind=None)
        self._jobs.append(job)
        payload.update(
            app=_app_to_dict(app),
            allow_concurrency_change=allow_concurrency_change,
            allow_shrink=allow_shrink,
            remaining_iterations=job.remaining_iterations,
        )
        self._journal_write("launch", payload)
        return job

    def update_budget(self, job: RunningJob, new_budget_w: float) -> None:
        """React to a cluster budget change between segments.

        Atomic: the new cap set is planned and validated before any job
        field changes, so a raised :class:`InfeasibleBudgetError` (or
        :class:`~repro.errors.ActuationError` from the verified
        hardware commit) leaves the job bit-identical to its pre-call
        state.
        """
        if new_budget_w <= 0:
            raise SchedulingError("budget must be > 0")
        if job.parked:
            raise NodeFailureError(
                f"cannot re-budget a parked job ({job.park_reason})"
            )
        self._recoordinate(
            job,
            self._models(job.app),
            budget_w=new_budget_w,
            journal_kind="budget_change",
        )

    def recoordinate(
        self, job: RunningJob, budget_w: float | None = None,
        source: str = "watchdog",
    ) -> None:
        """Public transactional re-coordination (the watchdog's lever).

        Re-plans and re-commits the job's caps against *budget_w*
        (default: its current budget) with the audit attributed to
        *source*.  ``job.budget_w`` — the facility bound — is left
        unchanged: a corrective derate plans below the bound without
        pretending the bound moved, so the next machine-room budget
        event restores full planning headroom.  Same atomicity as
        :meth:`update_budget`.
        """
        if job.parked:
            raise NodeFailureError(
                f"cannot re-coordinate a parked job ({job.park_reason})"
            )
        if budget_w is not None and budget_w <= 0:
            raise SchedulingError("budget must be > 0")
        self._recoordinate(
            job,
            self._models(job.app),
            budget_w=budget_w,
            source=source,
            commit_budget=False,
        )

    def recalibrate(self) -> None:
        """Re-measure node power factors (after degradation events)."""
        self._factors = measure_node_factors(self._engine)
        # note: running jobs pick the new factors up at their next
        # budget update / re-coordination

    # -- transactional re-coordination ----------------------------------

    def _plan(
        self,
        job: RunningJob,
        recommender: Recommender,
        budget_w: float,
        node_ids: tuple[int, ...],
    ) -> tuple[int, tuple[tuple[float, float], ...], object, object]:
        """Compute a full candidate cap set without touching the job.

        Returns ``(n_threads, per_node_caps, lo_w, hi_w)`` or raises
        :class:`InfeasibleBudgetError`; the caller commits atomically.
        On a heterogeneous node set the bounds are per-rank tuples and
        every slot's budget is split by its own class's power model.
        """
        pipeline = self._scheduler.pipeline
        specs = pipeline.node_specs
        id_specs = [specs[i] for i in node_ids]
        if any(s != specs[0] for s in id_specs):
            return self._plan_hetero(
                job, recommender, budget_w, node_ids, id_specs
            )
        power = recommender.power_model
        n_nodes = len(node_ids)
        n_threads = job.n_threads
        rng = power.power_range(n_threads)
        lo, hi = rng.node_lo_w, rng.node_hi_w
        if budget_w < n_nodes * lo:
            if not job.allow_concurrency_change:
                raise InfeasibleBudgetError(
                    f"budget {budget_w:.0f} W below the {n_nodes}-node "
                    f"floor at the pinned concurrency {n_threads}"
                )
            # re-recommend threads for the reduced per-node share
            cfg = recommender.recommend(budget_w / n_nodes)
            n_threads = cfg.n_threads
            rng = power.power_range(n_threads)
            lo, hi = rng.node_lo_w, rng.node_hi_w
        factors = self._factors[list(node_ids)]
        budgets = coordinate_power(
            min(budget_w, n_nodes * hi), factors, lo_w=lo, hi_w=hi
        )
        caps = tuple(
            _split_caps(power, float(b), n_threads) for b in budgets
        )
        return n_threads, caps, lo, hi

    def _plan_hetero(
        self,
        job: RunningJob,
        recommender: Recommender,
        budget_w: float,
        node_ids: tuple[int, ...],
        id_specs: list,
    ) -> tuple[int, tuple[tuple[float, float], ...], object, object]:
        """The :meth:`_plan` arithmetic over per-slot class models."""
        pipeline = self._scheduler.pipeline
        entry = pipeline.ensure_knowledge(job.app)
        models = [
            pipeline.class_bundle(entry, s).power_model for s in id_specs
        ]
        n_nodes = len(node_ids)
        n_threads = job.n_threads

        def ranges_at(nt: int) -> tuple[np.ndarray, np.ndarray]:
            rngs = [m.power_range(nt) for m in models]
            return (
                np.array([r.node_lo_w for r in rngs]),
                np.array([r.node_hi_w for r in rngs]),
            )

        lo_arr, hi_arr = ranges_at(n_threads)
        if budget_w < lo_arr.sum():
            if not job.allow_concurrency_change:
                raise InfeasibleBudgetError(
                    f"budget {budget_w:.0f} W below the {n_nodes}-node "
                    f"floor at the pinned concurrency {n_threads}"
                )
            cfg = recommender.recommend(budget_w / n_nodes)
            n_threads = cfg.n_threads
            lo_arr, hi_arr = ranges_at(n_threads)
        factors = self._factors[list(node_ids)]
        budgets = coordinate_power(
            min(budget_w, float(hi_arr.sum())),
            factors,
            lo_w=lo_arr,
            hi_w=hi_arr,
        )
        caps = tuple(
            _split_caps(m, float(b), n_threads)
            for m, b in zip(models, budgets)
        )
        return (
            n_threads,
            caps,
            tuple(float(x) for x in lo_arr),
            tuple(float(x) for x in hi_arr),
        )

    def _commit_caps(
        self,
        node_ids: tuple[int, ...],
        caps: tuple[tuple[float, ...], ...],
        force: bool = False,
    ) -> None:
        """Physically write a cap set, all nodes or none.

        Each node's tuple goes through the verified write path; on
        :class:`~repro.errors.ActuationError` every node written so far
        is rolled back to its snapshot (out-of-band, always lands) and
        the error propagates — the caller's job state is untouched
        because job fields only change after this returns.  ``force``
        uses the out-of-band path directly (emergency throttle).
        """
        cluster = self._engine.cluster
        snapshots = []
        try:
            for node_id, cap in zip(node_ids, caps):
                rapl = cluster.node(node_id).rapl
                snapshots.append((rapl, rapl.snapshot_caps()))
                if force:
                    rapl.force_caps(cap)
                else:
                    rapl.write_caps_verified(cap)
        except ActuationError:
            for rapl, snap in snapshots:
                rapl.restore_caps(snap)
            raise

    def _recoordinate(
        self,
        job: RunningJob,
        recommender: Recommender,
        budget_w: float | None = None,
        node_ids: tuple[int, ...] | None = None,
        source: str = "runtime",
        force: bool = False,
        journal_kind: str | None = "cap_commit",
        commit_budget: bool = True,
    ) -> dict:
        """Re-split the job's budget over a decomposition, atomically.

        Plans first (:meth:`_plan` raises with the job untouched), then
        commits the cap set to the hardware through the verified write
        path (an :class:`~repro.errors.ActuationError` rolls the
        hardware back and leaves the job untouched too), then commits
        budget, decomposition, concurrency, and caps together, audits
        the committed set on the shared monitor, and journals the
        transition.  Returns the journal payload (callers that journal
        a different record kind reuse it).

        With ``commit_budget=False`` the caps are planned against
        *budget_w* but ``job.budget_w`` keeps the facility bound — the
        watchdog's corrective derate, which must not masquerade as a
        machine-room budget change.
        """
        budget = job.budget_w if budget_w is None else budget_w
        ids = job.node_ids if node_ids is None else node_ids
        n_threads, caps, lo, hi = self._plan(job, recommender, budget, ids)
        self._commit_caps(ids, caps, force=force)
        if commit_budget:
            job.budget_w = budget
        job.node_ids = ids
        job.n_nodes = len(ids)
        job.n_threads = n_threads
        job.per_node_caps = caps
        self.monitor.audit(
            source,
            job.app.name,
            budget,
            caps,
            node_lo_w=lo,
            node_hi_w=hi,
        )
        payload = {
            "job": self._job_index(job),
            "source": source,
            "budget_w": job.budget_w,
            "audit_budget_w": budget,
            "node_ids": list(ids),
            "n_threads": n_threads,
            "per_node_caps": [list(c) for c in caps],
            "node_lo_w": lo,
            "node_hi_w": hi,
        }
        if journal_kind is not None:
            self._journal_write(journal_kind, payload)
        return payload

    # -- node failure handling ------------------------------------------

    def _park(self, job: RunningJob, reason: str) -> None:
        """Sideline a job the cluster can no longer serve."""
        job.parked = True
        job.park_reason = reason
        self._journal_write(
            "park", {"job": self._job_index(job), "reason": reason}
        )

    def fail_node(self, node_id: int) -> list[RunningJob]:
        """Take a node out of service and re-coordinate its jobs.

        Each affected job shrinks onto its surviving nodes — the fixed
        job budget re-split over fewer parts — when ``allow_shrink``
        was set and the reduced decomposition stays feasible; otherwise
        it is parked with a typed reason.  Returns the affected jobs.
        """
        cluster = self._engine.cluster
        cluster.fail_node(node_id)
        affected = [
            j
            for j in self._jobs
            if not j.done and not j.parked and node_id in j.node_ids
        ]
        for job in affected:
            survivors = tuple(
                i for i in job.node_ids if cluster.is_available(i)
            )
            if not job.allow_shrink or not survivors:
                self._park(
                    job,
                    f"node {node_id} failed and the {job.n_nodes}-node "
                    f"decomposition is pinned",
                )
                continue
            try:
                self._recoordinate(
                    job, self._models(job.app), node_ids=survivors
                )
            except InfeasibleBudgetError as exc:
                self._park(
                    job,
                    f"node {node_id} failed; budget infeasible on the "
                    f"{len(survivors)} survivors ({exc})",
                )
            except ActuationError as exc:
                self._park(
                    job,
                    f"node {node_id} failed; cap writes to the "
                    f"{len(survivors)} survivors would not stick ({exc})",
                )
        return affected

    def recover_node(self, node_id: int) -> list[RunningJob]:
        """Return a node to service and un-park jobs it unblocks.

        A parked job resumes only when *all* of its nodes are back in
        service and its budget re-coordinates cleanly; shrunk jobs keep
        their reduced decomposition (the data was already re-split).
        Returns the jobs that resumed.
        """
        cluster = self._engine.cluster
        cluster.recover_node(node_id)
        resumed = []
        for job in self._jobs:
            if job.done or not job.parked:
                continue
            if not all(cluster.is_available(i) for i in job.node_ids):
                continue
            try:
                self._recoordinate(
                    job, self._models(job.app), journal_kind="recover"
                )
            except (InfeasibleBudgetError, ActuationError):
                continue  # nodes are back but the job still cannot run
            job.parked = False
            job.park_reason = None
            resumed.append(job)
        return resumed

    # -- enforcement levers (the watchdog's escalation ladder) ----------

    def reissue_caps(
        self, job: RunningJob, source: str = "watchdog.reissue"
    ) -> None:
        """Re-write the job's committed caps through the verified path.

        First rung of breach correction: a dropped or partially-applied
        write leaves the registers disagreeing with the committed set,
        and re-issuing (with readback verification) repairs that
        without re-planning.  The re-written set is re-audited so the
        corrective action appears on the ledger.  Raises
        :class:`~repro.errors.ActuationError` when the writes will not
        stick (hardware rolled back).
        """
        if job.parked:
            raise NodeFailureError(f"job is parked: {job.park_reason}")
        self._commit_caps(job.node_ids, job.per_node_caps)
        self.monitor.audit(
            source, job.app.name, job.budget_w, job.per_node_caps
        )
        self._journal_write(
            "cap_commit",
            {
                "job": self._job_index(job),
                "source": source,
                "budget_w": job.budget_w,
                "node_ids": list(job.node_ids),
                "n_threads": job.n_threads,
                "per_node_caps": [list(c) for c in job.per_node_caps],
                "node_lo_w": None,
                "node_hi_w": None,
            },
        )

    def emergency_throttle(self, job: RunningJob) -> None:
        """Uniform throttle to the floor of the acceptable range.

        Last rung of the watchdog's escalation: when re-coordination
        itself fails (infeasible derated budget, unresponsive write
        path), every node of the job is forced — out-of-band, bypassing
        the fallible in-band path — to the lowest acceptable power at
        the current concurrency.  Always lands, always audited
        (``watchdog.emergency``).
        """
        if job.parked:
            raise NodeFailureError(f"job is parked: {job.park_reason}")
        recommender = self._models(job.app)
        pipeline = self._scheduler.pipeline
        specs = pipeline.node_specs
        id_specs = [specs[i] for i in job.node_ids]
        if all(s == id_specs[0] for s in id_specs):
            models = [recommender.power_model] * len(job.node_ids)
        else:
            entry = pipeline.ensure_knowledge(job.app)
            models = [
                pipeline.class_bundle(entry, s).power_model for s in id_specs
            ]
        floor_w = float(
            sum(m.power_range(job.n_threads).node_lo_w for m in models)
        )
        self._recoordinate(
            job,
            recommender,
            budget_w=min(job.budget_w, floor_w),
            source="watchdog.emergency",
            force=True,
            commit_budget=False,
        )

    # -- segment execution ----------------------------------------------

    def advance(self, job: RunningJob, iterations: int) -> SegmentRecord:
        """Execute up to *iterations* iterations under the current caps."""
        if job.done:
            raise SchedulingError("job already finished")
        if job.parked:
            raise NodeFailureError(f"job is parked: {job.park_reason}")
        if iterations < 1:
            raise SchedulingError("iterations must be >= 1")
        chunk = min(iterations, job.remaining_iterations)
        result = self._engine.run(
            job.app,
            ExecutionConfig(
                n_nodes=job.n_nodes,
                n_threads=job.n_threads,
                per_node_caps=job.per_node_caps,
                node_ids=job.node_ids,
                iterations=chunk,
            ),
        )
        record = SegmentRecord(
            iterations=chunk,
            budget_w=job.budget_w,
            n_threads=job.n_threads,
            time_s=result.total_time_s,
            energy_j=result.energy_j,
            performance=result.performance,
        )
        job.segments.append(record)
        job.remaining_iterations -= chunk
        self._journal_write(
            "segment",
            {
                "job": self._job_index(job),
                "iterations": chunk,
                "budget_w": record.budget_w,
                "n_threads": record.n_threads,
                "time_s": record.time_s,
                "energy_j": record.energy_j,
                "performance": record.performance,
            },
        )
        if self._watchdog is not None:
            self._watchdog.observe(job)
        if job.done:
            self._report_outcome(job)
        return record

    def _report_outcome(self, job: RunningJob) -> None:
        """Report a finished job through the pipeline's choke point.

        Predicted performance is recomputed from the job's *final*
        shape (caps, concurrency, surviving nodes) so re-coordinated
        or shrunk jobs are compared against what the models promised
        for the configuration they actually ran, not the launch-time
        one.  Failures to predict (e.g. a cap below the model's floor
        after an emergency throttle) drop the observation rather than
        poisoning the history.
        """
        pipeline = self._scheduler.pipeline
        specs = pipeline.node_specs
        kb = self._scheduler.knowledge
        if not kb.has(job.app.name, job.app.problem_size):
            return
        entry = kb.get(job.app.name, job.app.problem_size)
        predicted = 0.0
        for slot, caps in zip(job.node_ids, job.per_node_caps):
            bundle = pipeline.class_bundle(entry, specs[slot])
            freq = bundle.power_model.max_freq_under(
                caps[0], job.n_threads
            )
            if freq is None:
                return
            predicted += bundle.predictor.predict_perf(job.n_threads, freq)
        measured = job.mean_performance
        if predicted <= 0 or measured <= 0:
            return
        flags = []
        if len({s.n_threads for s in job.segments}) > 1:
            flags.append("concurrency_change")
        if len({s.budget_w for s in job.segments}) > 1:
            flags.append("budget_change")
        pipeline.record_outcome(
            job.app,
            predicted_perf=predicted,
            measured_perf=measured,
            measured_power_w=(
                job.energy_j / job.elapsed_s if job.elapsed_s > 0 else None
            ),
            budget_w=job.budget_w,
            n_nodes=job.n_nodes,
            n_threads=job.n_threads,
            model_version=entry.model_version,
            source="runtime",
            flags=tuple(flags),
        )

    def run_to_completion(
        self, job: RunningJob, segment_iterations: int = 50
    ) -> RunningJob:
        """Drain the job in fixed-size segments."""
        while not job.done:
            self.advance(job, segment_iterations)
        return job

    # -- crash recovery -------------------------------------------------

    @classmethod
    def restore(
        cls,
        journal_path: str | Path,
        scheduler: ClipScheduler,
        reattach: bool = True,
    ) -> "PowerBoundedRuntime":
        """Rebuild a runtime from its journal after a crash.

        Replays every intact record in order: jobs are reconstructed
        field-by-field (the app itself is deserialized from the launch
        record, so custom workloads survive too) and every journaled
        cap commit is re-audited, reproducing the monitor's ledger
        exactly — replay is bit-identical because JSON round-trips
        floats exactly.  No hardware is touched: the next
        :meth:`advance` re-establishes the caps on the nodes it runs.
        With ``reattach`` (the default) the restored runtime continues
        appending to the same journal file.
        """
        runtime = cls(scheduler)
        for record in RuntimeJournal.read(journal_path):
            runtime._replay(record)
        if reattach:
            runtime._journal = RuntimeJournal(journal_path)
        return runtime

    def _replay(self, record: dict) -> None:
        kind = record["kind"]
        if kind == "launch":
            job = RunningJob(
                app=_app_from_dict(record["app"]),
                n_nodes=len(record["node_ids"]),
                n_threads=record["n_threads"],
                node_ids=tuple(record["node_ids"]),
                budget_w=record["budget_w"],
                per_node_caps=tuple(
                    tuple(c) for c in record["per_node_caps"]
                ),
                remaining_iterations=record["remaining_iterations"],
                allow_concurrency_change=record["allow_concurrency_change"],
                allow_shrink=record["allow_shrink"],
            )
            self._jobs.append(job)
            self._replay_audit(record, job)
        elif kind in ("cap_commit", "budget_change", "recover"):
            job = self._jobs[record["job"]]
            job.budget_w = record["budget_w"]
            job.node_ids = tuple(record["node_ids"])
            job.n_nodes = len(job.node_ids)
            job.n_threads = record["n_threads"]
            job.per_node_caps = tuple(
                tuple(c) for c in record["per_node_caps"]
            )
            if kind == "recover":
                job.parked = False
                job.park_reason = None
            self._replay_audit(record, job)
        elif kind == "park":
            job = self._jobs[record["job"]]
            job.parked = True
            job.park_reason = record["reason"]
        elif kind == "segment":
            job = self._jobs[record["job"]]
            job.segments.append(
                SegmentRecord(
                    iterations=record["iterations"],
                    budget_w=record["budget_w"],
                    n_threads=record["n_threads"],
                    time_s=record["time_s"],
                    energy_j=record["energy_j"],
                    performance=record["performance"],
                )
            )
            job.remaining_iterations -= record["iterations"]

    def _replay_audit(self, record: dict, job: RunningJob) -> None:
        self.monitor.audit(
            record["source"],
            job.app.name,
            record.get("audit_budget_w", record["budget_w"]),
            tuple(tuple(c) for c in record["per_node_caps"]),
            node_lo_w=_bound_from_json(record["node_lo_w"]),
            node_hi_w=_bound_from_json(record["node_hi_w"]),
        )
