"""Tests for multi-job node/power partitioning."""

import dataclasses

import pytest

from repro.core.knowledge import KnowledgeDB
from repro.core.multijob import MultiJobCoordinator
from repro.core.scheduler import ClipScheduler
from repro.errors import InfeasibleBudgetError, SchedulingError
from repro.workloads.apps import get_app


@pytest.fixture()
def coordinator(engine, trained_inflection):
    clip = ClipScheduler(
        engine, inflection=trained_inflection, knowledge=KnowledgeDB()
    )
    return MultiJobCoordinator(clip)


THREE_APPS = ("comd", "sp-mz.C", "stream")


class TestPartition:
    def test_nodes_disjoint_and_within_cluster(self, coordinator):
        apps = [get_app(n) for n in THREE_APPS]
        placements = coordinator.partition(apps, 1800.0)
        used = [i for p in placements for i in p.node_ids]
        assert len(used) == len(set(used))
        assert all(0 <= i < 8 for i in used)

    def test_budget_conserved(self, coordinator):
        apps = [get_app(n) for n in THREE_APPS]
        placements = coordinator.partition(apps, 1800.0)
        assert sum(p.budget_w for p in placements) <= 1800.0 * (1 + 1e-9)

    def test_every_job_feasible(self, coordinator):
        apps = [get_app(n) for n in THREE_APPS]
        for p in coordinator.partition(apps, 1800.0):
            assert p.n_nodes >= 1
            assert p.config.n_threads >= 2
            assert p.budget_w > 0

    def test_parabolic_job_throttled(self, coordinator):
        apps = [get_app(n) for n in THREE_APPS]
        placements = {p.app_name: p for p in coordinator.partition(apps, 1800.0)}
        assert placements["sp-mz.C"].config.n_threads < 24

    def test_more_budget_helps_every_job(self, coordinator):
        apps = [get_app(n) for n in THREE_APPS]
        small = {p.app_name: p for p in coordinator.partition(apps, 900.0)}
        large = {p.app_name: p for p in coordinator.partition(apps, 2400.0)}
        for name in THREE_APPS:
            assert large[name].budget_w >= small[name].budget_w * 0.99

    def test_single_job_degenerate_case(self, coordinator):
        placements = coordinator.partition([get_app("comd")], 1800.0)
        assert len(placements) == 1
        assert placements[0].n_nodes >= 4  # linear app grabs nodes

    def test_rejects_empty(self, coordinator):
        with pytest.raises(SchedulingError):
            coordinator.partition([], 1800.0)

    def test_rejects_more_jobs_than_nodes(self, coordinator):
        apps = [get_app("comd")] * 9
        with pytest.raises(SchedulingError):
            coordinator.partition(apps, 5000.0)

    def test_rejects_starved_budget(self, coordinator):
        apps = [get_app(n) for n in THREE_APPS]
        with pytest.raises(InfeasibleBudgetError):
            coordinator.partition(apps, 150.0)


class TestRun:
    def test_run_executes_all_jobs(self, coordinator):
        apps = [get_app(n) for n in THREE_APPS]
        results = coordinator.run(apps, 1800.0, iterations=3)
        assert len(results) == 3
        for placement, result in results:
            assert result.performance > 0
            assert result.n_nodes == placement.n_nodes
            assert {r.node_id for r in result.nodes} == set(placement.node_ids)

    def test_combined_power_within_budget(self, coordinator):
        apps = [get_app(n) for n in THREE_APPS]
        results = coordinator.run(apps, 1800.0, iterations=3)
        drawn = sum(
            rec.operating_point.pkg_power_w + rec.operating_point.dram_power_w
            for _, result in results
            for rec in result.nodes
        )
        assert drawn <= 1800.0 * (1 + 1e-6)

    def test_duplicate_names_run_their_own_workloads(
        self, coordinator, monkeypatch
    ):
        """Regression: placements pair with apps by index, not by name.

        Two distinct workloads sharing a name (same kernel, different
        problem size) used to collapse through a name-keyed dict, so
        one of them executed twice and the other never ran.
        """
        base = get_app("comd")
        twin = dataclasses.replace(base, problem_size="twin-large")
        coordinator.partition([base, twin], 1600.0)  # warm model bundles
        executed = []
        engine = coordinator._engine
        real_run = engine.run

        def spy(app, config):
            executed.append(app)
            return real_run(app, config)

        monkeypatch.setattr(engine, "run", spy)
        results = coordinator.run([base, twin], 1600.0, iterations=2)
        assert len(results) == 2
        assert executed[0] is base
        assert executed[1] is twin

    def test_fairness_no_job_starved(self, coordinator):
        apps = [get_app(n) for n in THREE_APPS]
        results = coordinator.run(apps, 2000.0, iterations=3)
        # every job achieves a nontrivial fraction of its solo
        # unbounded throughput
        for placement, result in results:
            solo = coordinator._engine.run(
                get_app(placement.app_name),
                placement.to_execution_config(iterations=3),
            )
            assert result.performance == pytest.approx(solo.performance, rel=1e-6)
