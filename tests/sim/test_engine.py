"""Unit, integration, and property tests for the execution engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulingError
from repro.hw.cluster import SimulatedCluster
from repro.hw.numa import AffinityKind
from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.workloads.apps import get_app


@pytest.fixture()
def comd():
    return get_app("comd")


@pytest.fixture()
def spmz():
    return get_app("sp-mz.C")


class TestConfigValidation:
    def test_rejects_zero_nodes(self):
        with pytest.raises(SchedulingError):
            ExecutionConfig(n_nodes=0, n_threads=4)

    def test_rejects_zero_threads(self):
        with pytest.raises(SchedulingError):
            ExecutionConfig(n_nodes=1, n_threads=0)

    def test_rejects_mismatched_per_node_caps(self):
        with pytest.raises(SchedulingError):
            ExecutionConfig(n_nodes=2, n_threads=4, per_node_caps=((100.0, 20.0),))

    def test_rejects_mismatched_node_ids(self):
        with pytest.raises(SchedulingError):
            ExecutionConfig(n_nodes=2, n_threads=4, node_ids=(0,))

    def test_caps_for_uniform(self):
        cfg = ExecutionConfig(n_nodes=2, n_threads=4, pkg_cap_w=100.0, dram_cap_w=20.0)
        assert cfg.caps_for(0) == (100.0, 20.0)
        assert cfg.caps_for(1) == (100.0, 20.0)
        assert cfg.node_budget_w == pytest.approx(120.0)

    def test_caps_for_per_node(self):
        cfg = ExecutionConfig(
            n_nodes=2, n_threads=4, per_node_caps=((100.0, 20.0), (110.0, 25.0))
        )
        assert cfg.caps_for(1) == (110.0, 25.0)


class TestRunBasics:
    def test_result_shape(self, engine, comd):
        r = engine.run(comd, ExecutionConfig(n_nodes=4, n_threads=12, iterations=5))
        assert r.n_nodes == 4
        assert len(r.nodes) == 4
        assert r.iterations == 5
        assert r.total_time_s == pytest.approx(5 * r.t_step_s)
        assert r.performance == pytest.approx(5 / r.total_time_s)

    def test_rejects_too_many_nodes(self, engine, comd):
        with pytest.raises(SchedulingError):
            engine.run(comd, ExecutionConfig(n_nodes=9, n_threads=4))

    def test_rejects_too_many_threads(self, engine, comd):
        with pytest.raises(SchedulingError):
            engine.run(comd, ExecutionConfig(n_nodes=1, n_threads=25))

    def test_deterministic(self, comd):
        r1 = ExecutionEngine(SimulatedCluster.testbed(), seed=1).run(
            comd, ExecutionConfig(n_nodes=4, n_threads=12, iterations=3)
        )
        r2 = ExecutionEngine(SimulatedCluster.testbed(), seed=1).run(
            comd, ExecutionConfig(n_nodes=4, n_threads=12, iterations=3)
        )
        assert r1.total_time_s == r2.total_time_s
        assert r1.nodes[0].events.event1 == r2.nodes[0].events.event1

    def test_node_selection(self, engine, comd):
        r = engine.run(
            comd,
            ExecutionConfig(n_nodes=2, n_threads=12, node_ids=(5, 7), iterations=2),
        )
        assert [n.node_id for n in r.nodes] == [5, 7]

    def test_affinity_override(self, engine, comd):
        r = engine.run(
            comd,
            ExecutionConfig(
                n_nodes=1, n_threads=8, affinity=AffinityKind.COMPACT, iterations=2
            ),
        )
        assert r.affinity == "compact"


class TestPowerBehaviour:
    def test_caps_respected(self, engine, spmz):
        r = engine.run(
            spmz,
            ExecutionConfig(
                n_nodes=4, n_threads=24, pkg_cap_w=150.0, dram_cap_w=25.0, iterations=2
            ),
        )
        for rec in r.nodes:
            op = rec.operating_point
            if not op.cpu_cap_violated:
                assert op.pkg_power_w <= 150.0 * (1 + 1e-6)
            if not op.mem_cap_violated:
                assert op.dram_power_w <= 25.0 * (1 + 1e-6)

    def test_tighter_cap_never_faster(self, engine, comd):
        free = engine.run(
            comd, ExecutionConfig(n_nodes=4, n_threads=24, iterations=2)
        )
        capped = engine.run(
            comd,
            ExecutionConfig(
                n_nodes=4, n_threads=24, pkg_cap_w=120.0, dram_cap_w=20.0, iterations=2
            ),
        )
        assert capped.performance <= free.performance * (1 + 1e-9)

    def test_duty_cycling_under_starved_cap(self, engine, comd):
        r = engine.run(
            comd,
            ExecutionConfig(
                n_nodes=1, n_threads=24, pkg_cap_w=65.0, dram_cap_w=20.0, iterations=2
            ),
        )
        op = r.nodes[0].operating_point
        assert op.duty_cycle < 1.0
        assert op.effective_frequency_hz < engine.cluster.spec.node.socket.f_min

    def test_energy_consistent_with_avg_power(self, engine, comd):
        r = engine.run(comd, ExecutionConfig(n_nodes=4, n_threads=12, iterations=3))
        assert r.energy_j == pytest.approx(r.avg_power_w * r.total_time_s)

    def test_rapl_counters_accumulate(self, engine, comd):
        r = engine.run(comd, ExecutionConfig(n_nodes=1, n_threads=12, iterations=3))
        node = engine.cluster.node(0)
        from repro.hw.rapl import Domain

        assert node.rapl.energy_j(Domain.PKG) > 0
        assert node.rapl.energy_j(Domain.DRAM) > 0

    def test_meter_records_run(self, engine, comd):
        r = engine.run(comd, ExecutionConfig(n_nodes=1, n_threads=12, iterations=3))
        meter = engine.cluster.node(0).meter
        assert meter.elapsed_s == pytest.approx(r.total_time_s)

    def test_per_node_caps_differentiate(self, engine, comd):
        r = engine.run(
            comd,
            ExecutionConfig(
                n_nodes=2,
                n_threads=24,
                per_node_caps=((110.0, 25.0), (190.0, 25.0)),
                iterations=2,
            ),
        )
        f0 = r.nodes[0].operating_point.frequency_hz
        f1 = r.nodes[1].operating_point.frequency_hz
        assert f1 > f0


class TestClusterSemantics:
    def test_slowest_node_paces_step(self, engine, comd):
        r = engine.run(comd, ExecutionConfig(n_nodes=8, n_threads=24, iterations=2))
        assert r.t_step_s == pytest.approx(
            max(n.t_iter_s for n in r.nodes) + r.comm_s
        )

    def test_variability_creates_imbalance_under_cap(self, engine, comd):
        r = engine.run(
            comd,
            ExecutionConfig(
                n_nodes=8, n_threads=24, pkg_cap_w=130.0, dram_cap_w=20.0, iterations=2
            ),
        )
        assert r.imbalance > 1.0

    def test_more_nodes_faster_for_scalable_app(self, engine, comd):
        r2 = engine.run(comd, ExecutionConfig(n_nodes=2, n_threads=24, iterations=2))
        r8 = engine.run(comd, ExecutionConfig(n_nodes=8, n_threads=24, iterations=2))
        assert r8.performance > r2.performance

    def test_comm_cost_included(self, engine):
        halo = get_app("bt-mz.C")
        r = engine.run(halo, ExecutionConfig(n_nodes=8, n_threads=12, iterations=2))
        assert r.comm_s > 0

    def test_phase_thread_override_slows(self, engine):
        bt = get_app("bt-mz.C")
        base = engine.run(bt, ExecutionConfig(n_nodes=1, n_threads=24, iterations=2))
        forced = engine.run(
            bt,
            ExecutionConfig(
                n_nodes=1, n_threads=24, iterations=2,
                phase_threads={"solve": 4},
            ),
        )
        assert forced.performance < base.performance

    def test_summary_is_readable(self, engine, comd):
        r = engine.run(comd, ExecutionConfig(n_nodes=2, n_threads=12, iterations=2))
        s = r.summary()
        assert "comd" in s and "2 nodes" in s


class TestFixedPointRobustness:
    @settings(max_examples=25, deadline=None)
    @given(
        n_threads=st.integers(min_value=1, max_value=24),
        pkg=st.floats(min_value=60.0, max_value=260.0),
        dram=st.floats(min_value=10.0, max_value=36.0),
        app_name=st.sampled_from(["comd", "sp-mz.C", "stream", "bt-mz.C"]),
    )
    def test_any_config_converges(self, n_threads, pkg, dram, app_name):
        engine = ExecutionEngine(SimulatedCluster.testbed(), seed=0)
        r = engine.run(
            get_app(app_name),
            ExecutionConfig(
                n_nodes=2, n_threads=n_threads,
                pkg_cap_w=pkg, dram_cap_w=dram, iterations=1,
            ),
        )
        assert r.total_time_s > 0
        assert r.avg_power_w > 0
        assert r.peak_power_w >= 0


class TestWeakScaling:
    def test_weak_keeps_full_domain_per_node(self, engine, comd):
        one = engine.run(
            comd, ExecutionConfig(n_nodes=1, n_threads=24, iterations=2)
        )
        weak8 = engine.run(
            comd,
            ExecutionConfig(n_nodes=8, n_threads=24, iterations=2, scaling="weak"),
        )
        # per-node work identical: instructions per node match 1-node run
        assert weak8.nodes[0].events.event6 == pytest.approx(
            one.nodes[0].events.event6, rel=0.05
        )

    def test_weak_efficiency_near_one_for_light_comm(self, engine, comd):
        one = engine.run(
            comd, ExecutionConfig(n_nodes=1, n_threads=24, iterations=2)
        )
        weak8 = engine.run(
            comd,
            ExecutionConfig(n_nodes=8, n_threads=24, iterations=2, scaling="weak"),
        )
        efficiency = one.t_step_s / weak8.t_step_s
        assert 0.9 <= efficiency <= 1.0 + 1e-9

    def test_weak_halo_volume_constant(self, engine):
        from repro.workloads.apps import get_app

        app = get_app("bt-mz.C")
        comm = engine.comm_model
        assert comm.halo_bytes(app, 8, "weak") == pytest.approx(
            comm.halo_bytes(app, 1, "weak")
        )
        assert comm.halo_bytes(app, 8, "strong") < comm.halo_bytes(app, 1, "strong")

    def test_strong_faster_than_weak_per_step(self, engine, comd):
        strong = engine.run(
            comd, ExecutionConfig(n_nodes=8, n_threads=24, iterations=2)
        )
        weak = engine.run(
            comd,
            ExecutionConfig(n_nodes=8, n_threads=24, iterations=2, scaling="weak"),
        )
        assert strong.t_step_s < weak.t_step_s

    def test_unknown_scaling_rejected(self):
        with pytest.raises(SchedulingError):
            ExecutionConfig(n_nodes=1, n_threads=2, scaling="diagonal")

    def test_unknown_scaling_rejected_by_comm(self, engine, comd):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            engine.comm_model.halo_bytes(comd, 4, "diagonal")
