"""CLIP vs. the exhaustive-search optimum.

The paper claims the framework "can identify a (near) optimal
configuration without exhaustively searching the configuration space"
and that "CLIP performs close to the optimal for all the tested
benchmarks if the power budget is unlimited or high" (§V-C.2).  On the
simulated testbed we can afford the true exhaustive search
(:class:`OracleScheduler`), so the gap is measurable exactly.
"""

from repro.analysis.experiments import ClipSchedulerAdapter
from repro.analysis.metrics import geometric_mean
from repro.analysis.tables import render_table
from repro.baselines import OracleScheduler
from repro.core.knowledge import KnowledgeDB
from repro.core.scheduler import ClipScheduler
from repro.workloads.apps import get_app
from conftest import run_once

#: One app per scalability class, at one high and one low budget.
APPS = ("comd", "bt-mz.C", "sp-mz.C", "tealeaf")
BUDGETS_W = (1000.0, 1800.0)


def sweep(engine, trained_inflection):
    clip = ClipSchedulerAdapter(
        engine,
        ClipScheduler(
            engine, inflection=trained_inflection, knowledge=KnowledgeDB()
        ),
    )
    oracle = OracleScheduler(engine, thread_step=2)
    rows = []
    for name in APPS:
        app = get_app(name)
        for budget in BUDGETS_W:
            clip_perf = clip.run(app, budget, iterations=3).performance
            oracle_perf = oracle.run(app, budget, iterations=3).performance
            rows.append(
                [name, f"{budget:.0f}W", clip_perf, oracle_perf,
                 clip_perf / oracle_perf]
            )
    return rows


def test_oracle_gap(benchmark, engine, trained_inflection, report):
    rows = run_once(benchmark, lambda: sweep(engine, trained_inflection))

    report(
        "oracle_gap",
        render_table(
            ["Benchmark", "Budget", "CLIP (it/s)", "Optimal (it/s)",
             "fraction of optimal"],
            rows,
            title="CLIP vs exhaustive-search optimum",
        ),
    )

    fractions = [r[4] for r in rows]
    # "close to the optimal": within 25 % everywhere with 2-3 profiling
    # runs, against thousands of oracle trials
    assert min(fractions) >= 0.70, rows
    assert geometric_mean(fractions) >= 0.85
    # at high budgets the gap closes further
    high = [r[4] for r in rows if r[1] == "1800W"]
    assert geometric_mean(high) >= 0.88
