"""Ground-truth node-level performance model.

The simulated testbed needs to answer: *how long does one outer
iteration of application A take on one node with n threads at frequency
f given per-socket bandwidth limits?*  The answer uses a roofline-style
decomposition whose terms correspond to the physical effects the paper
attributes the three scalability classes to (§II):

.. math::

    T_{iter} = T_{serial}(f) + \\max(T_{comp}(n, f),\\ T_{mem}(B_{eff}))
               + T_{sync}(n)

* ``T_comp`` shrinks as 1/(n·f) — alone it yields the **linear** class;
* ``T_mem`` is flat once the sockets' bandwidth saturates — the knee
  where compute time dips below memory time produces the
  **logarithmic** class and *is* the inflection point NP;
* ``T_sync`` grows with n — when it dominates the marginal compute
  gain, performance peaks and then falls: the **parabolic** class.

Effective bandwidth accounts for three real limits: the RAPL-governed
per-socket ceiling, the per-thread extraction limit (few threads cannot
drive both controllers), and the cross-NUMA penalty implied by the
placement's remote-access fraction.

Everything is vectorized over thread counts so parameter sweeps (Figs.
1–3) evaluate in microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import WorkloadError
from repro.hw.specs import NodeSpec
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = [
    "NodePhaseTiming",
    "GroundTruthModel",
    "scalability_curve",
    "true_inflection_point",
    "true_scalability_class",
]

#: Throughput retained by a remote (cross-QPI) DRAM access relative to a
#: local one.
REMOTE_EFFICIENCY = 0.62

#: Uncore frequency scaling: on Haswell the ring/L3/memory-controller
#: clock follows the core clock domain, so deliverable DRAM bandwidth
#: degrades when cores run at low frequency.  The floor is the fraction
#: of peak bandwidth retained as the core clock approaches zero.
UNCORE_BW_FLOOR = 0.5

#: Multiplicative iteration-time penalty for odd thread counts (uneven
#: partitioning across zones/sockets); the paper observes odd
#: concurrency "performs worse ... in general" (§V-B.2).
ODD_CONCURRENCY_PENALTY = 0.015

#: Relative slowdown of a limited-concurrency phase per unit of
#: oversubscription: threads beyond ``max_useful_threads`` do not just
#: idle, they contend on the phase's serialized structures (the BT-MZ
#: ``exch_qbc`` effect, §V-B.1) — which is why the paper adjusts
#: concurrency phase-by-phase instead of relying on the idle threads
#: being harmless.
PHASE_OVERSUBSCRIPTION_PENALTY = 0.25


@dataclass(frozen=True)
class NodePhaseTiming:
    """Resolved timing of one iteration (or phase) on one node."""

    t_iter_s: float
    serial_s: float
    compute_s: float
    memory_s: float
    sync_s: float
    activity: float
    instructions: float
    dram_bytes: float
    bw_demand_per_socket: tuple[float, ...]
    remote_fraction: float
    phase_times: tuple[tuple[str, float], ...] = ()
    #: Device busy seconds inside the iteration (0 without offload).
    device_s: float = 0.0

    @property
    def bound(self) -> str:
        """Which roofline side limits the parallel section."""
        if self.device_s > max(self.compute_s, self.memory_s):
            return "device"
        return "memory" if self.memory_s > self.compute_s else "compute"

    @property
    def device_busy_fraction(self) -> float:
        """Share of the iteration the device spends busy."""
        if self.t_iter_s <= 0:
            return 0.0
        return min(self.device_s / self.t_iter_s, 1.0)


class GroundTruthModel:
    """Analytic timing model bound to one node specification."""

    def __init__(self, node: NodeSpec):
        self._node = node

    @property
    def node(self) -> NodeSpec:
        """The node this model times workloads on."""
        return self._node

    # ------------------------------------------------------------------

    def _core_rate(self, chars: WorkloadCharacteristics, f: float) -> float:
        """Instruction throughput of one core (instr/s) at frequency f."""
        return chars.ipc_fraction * self._node.socket.core.ipc_peak * f

    def device_rate(
        self, chars: WorkloadCharacteristics, gpu_clock_hz: float
    ) -> float:
        """Aggregate device throughput (instr/s) at *gpu_clock_hz*.

        Zero when the node has no accelerator or the workload offloads
        nothing — the signal :meth:`phase_time` uses to fall back to
        the host-only path bit-identically.
        """
        gpu = self._node.gpu
        if gpu is None or chars.gpu_fraction <= 0 or gpu_clock_hz <= 0:
            return 0.0
        return (
            self._node.n_gpus
            * gpu.instr_rate
            * (gpu_clock_hz / gpu.clk_nominal_hz)
        )

    def _effective_bandwidth(
        self,
        chars: WorkloadCharacteristics,
        threads_per_socket: np.ndarray,
        bw_limit_per_socket: np.ndarray,
        remote_fraction: float,
        frequency_hz: float,
    ) -> np.ndarray:
        """Deliverable DRAM bandwidth per socket (B/s).

        A socket only serves traffic if it hosts threads (first-touch
        pages live where their writers run).  Each socket's ceiling is
        the lowest of the RAPL-imposed limit, what its threads can
        extract, and the uncore-frequency-scaled peak (the ring and
        memory controller clock down with the cores, so a heavily
        capped core clock also costs bandwidth); the remote-access
        fraction then degrades throughput.
        """
        extract = threads_per_socket * chars.per_thread_bw_limit
        uncore = min(
            1.0,
            UNCORE_BW_FLOOR
            + (1.0 - UNCORE_BW_FLOOR) * frequency_hz / self._node.socket.f_nominal,
        )
        peak = self._node.socket.memory.peak_bandwidth * uncore
        bw = np.minimum(np.minimum(bw_limit_per_socket, extract), peak)
        penalty = 1.0 - remote_fraction * (1.0 - REMOTE_EFFICIENCY)
        return bw * penalty

    def phase_time(
        self,
        chars: WorkloadCharacteristics,
        threads_per_socket,
        frequency_hz: float,
        bw_limit_per_socket,
        remote_fraction: float = 0.0,
        work_fraction: float = 1.0,
        gpu_rate: float = 0.0,
    ) -> NodePhaseTiming:
        """Time one iteration of a (single-phase) workload on this node.

        Parameters
        ----------
        chars:
            Workload (treated as single-phase; multi-phase apps go
            through :meth:`iteration_time`).
        threads_per_socket:
            Thread counts per socket, e.g. ``[6, 6]``.
        frequency_hz:
            Shared core frequency.
        bw_limit_per_socket:
            Per-socket DRAM bandwidth ceilings (RAPL-resolved).
        remote_fraction:
            Fraction of accesses crossing sockets for this placement.
        work_fraction:
            Share of the *global* problem this node executes (1/N for
            an N-node balanced decomposition).
        gpu_rate:
            Aggregate device throughput (instr/s) at the resolved
            device clock; 0 disables offload (CPU-only node, capless
            host fallback, or a workload with ``gpu_fraction == 0``).
            Offloaded kernels overlap the host's parallel section:
            the device executes ``gpu_fraction`` of the parallel
            instructions while the host runs the remainder, so the
            parallel time is the roofline max over host compute, DRAM,
            and device time.  DRAM traffic stays with the host — the
            transfer stream to and from the board rides the same
            controllers.
        """
        tps = np.asarray(threads_per_socket, dtype=np.int64)
        if tps.ndim != 1 or len(tps) != self._node.n_sockets:
            raise WorkloadError("threads_per_socket must have one entry per socket")
        if np.any(tps < 0) or np.any(tps > self._node.socket.n_cores):
            raise WorkloadError("thread counts must fit each socket")
        n = int(tps.sum())
        if n < 1:
            raise WorkloadError("need at least one thread")
        if frequency_hz <= 0:
            raise WorkloadError("frequency must be > 0")
        if not 0.0 < work_fraction <= 1.0:
            raise WorkloadError("work_fraction must lie in (0, 1]")
        if not 0.0 <= remote_fraction <= 1.0:
            raise WorkloadError("remote_fraction must lie in [0, 1]")
        bw_lim = np.asarray(bw_limit_per_socket, dtype=np.float64)
        if bw_lim.shape != tps.shape:
            raise WorkloadError("bw_limit_per_socket must match socket count")

        instr = chars.instructions_per_iter * work_fraction
        serial_instr = instr * chars.serial_fraction
        par_instr = instr - serial_instr
        rate1 = self._core_rate(chars, frequency_hz)

        t_serial = serial_instr / rate1
        dev_instr = par_instr * chars.gpu_fraction if gpu_rate > 0 else 0.0
        t_comp = (par_instr - dev_instr) / (n * rate1)
        t_dev = dev_instr / gpu_rate if dev_instr > 0 else 0.0

        dram_bytes = instr * chars.bytes_per_instruction
        bw = self._effective_bandwidth(
            chars, tps, bw_lim, remote_fraction, frequency_hz
        )
        total_bw = float(bw.sum())
        t_mem = dram_bytes / total_bw if dram_bytes > 0 else 0.0

        t_sync = chars.sync_cost_s * max(n - 1, 0)
        t_par = max(t_comp, t_mem, t_dev)
        t_iter = t_serial + t_par + t_sync
        if n % 2 == 1 and n > 1:
            t_iter *= 1.0 + ODD_CONCURRENCY_PENALTY

        # Compute phases clock at full activity; synchronization is
        # spin-waiting (OpenMP barriers default to active spinning) at
        # roughly half power; memory stalls clock-gate the pipeline.
        busy = t_serial + t_comp + 0.5 * t_sync
        activity = float(np.clip(busy / t_iter if t_iter > 0 else 1.0, 0.05, 1.0))

        # Demand is what the workload would consume at this pace,
        # apportioned by each socket's share of deliverable bandwidth.
        if dram_bytes > 0 and t_iter > 0 and total_bw > 0:
            shares = bw / total_bw
            demand = tuple(float(s * dram_bytes / t_iter) for s in shares)
        else:
            demand = tuple(0.0 for _ in range(len(tps)))

        return NodePhaseTiming(
            t_iter_s=t_iter,
            serial_s=t_serial,
            compute_s=t_comp,
            memory_s=t_mem,
            sync_s=t_sync,
            activity=activity,
            instructions=instr,
            dram_bytes=dram_bytes,
            bw_demand_per_socket=demand,
            remote_fraction=remote_fraction,
            device_s=t_dev,
        )

    def iteration_time(
        self,
        chars: WorkloadCharacteristics,
        threads_per_socket,
        frequency_hz: float,
        bw_limit_per_socket,
        remote_fraction: float = 0.0,
        work_fraction: float = 1.0,
        phase_threads: dict[str, tuple[int, ...]] | None = None,
        gpu_rate: float = 0.0,
    ) -> NodePhaseTiming:
        """Time one full iteration, summing over the app's phases.

        ``phase_threads`` optionally overrides the placement for named
        phases — the mechanism behind the paper's BT-MZ "concurrency
        phase-by-phase" adjustment.  A phase's own
        ``max_useful_threads`` additionally clips how many of the
        provided threads do useful work (the rest idle at the barrier).
        """
        totals = dict(
            t=0.0, serial=0.0, comp=0.0, mem=0.0, sync=0.0,
            instr=0.0, bytes_=0.0, dev=0.0,
        )
        busy_weighted = 0.0
        n_sockets = self._node.n_sockets
        demand = np.zeros(n_sockets)
        phase_breakdown: list[tuple[str, float]] = []
        for phase in chars.effective_phases():
            tps = np.asarray(
                (phase_threads or {}).get(phase.name, threads_per_socket),
                dtype=np.int64,
            )
            oversub = 1.0
            if phase.max_useful_threads is not None:
                excess = int(tps.sum()) - phase.max_useful_threads
                if excess > 0:
                    oversub = 1.0 + PHASE_OVERSUBSCRIPTION_PENALTY * (
                        excess / phase.max_useful_threads
                    )
                tps = _clip_total_threads(tps, phase.max_useful_threads)
            view = chars.phase_view(phase)
            pt = self.phase_time(
                view, tps, frequency_hz, bw_limit_per_socket,
                remote_fraction=remote_fraction, work_fraction=work_fraction,
                gpu_rate=gpu_rate,
            )
            if oversub != 1.0:
                pt = replace(pt, t_iter_s=pt.t_iter_s * oversub)
            phase_breakdown.append((phase.name, pt.t_iter_s))
            totals["t"] += pt.t_iter_s
            totals["serial"] += pt.serial_s
            totals["comp"] += pt.compute_s
            totals["mem"] += pt.memory_s
            totals["sync"] += pt.sync_s
            totals["instr"] += pt.instructions
            totals["bytes_"] += pt.dram_bytes
            totals["dev"] += pt.device_s
            busy_weighted += pt.activity * pt.t_iter_s
            demand += np.asarray(pt.bw_demand_per_socket) * pt.t_iter_s
        t = totals["t"]
        return NodePhaseTiming(
            t_iter_s=t,
            serial_s=totals["serial"],
            compute_s=totals["comp"],
            memory_s=totals["mem"],
            sync_s=totals["sync"],
            activity=float(busy_weighted / t) if t > 0 else 1.0,
            instructions=totals["instr"],
            dram_bytes=totals["bytes_"],
            bw_demand_per_socket=tuple(demand / t if t > 0 else demand),
            remote_fraction=remote_fraction,
            phase_times=tuple(phase_breakdown),
            device_s=totals["dev"],
        )


def _clip_total_threads(tps: np.ndarray, limit: int) -> np.ndarray:
    """Reduce a per-socket thread histogram to at most *limit* threads,
    removing threads round-robin from the fullest sockets."""
    tps = tps.copy()
    while tps.sum() > limit:
        tps[int(np.argmax(tps))] -= 1
    return tps


# ----------------------------------------------------------------------
# curve-level helpers (ground truth used by tests and the oracle)
# ----------------------------------------------------------------------


def _balanced_split(n: int, n_sockets: int, cores_per_socket: int) -> np.ndarray:
    """Scatter-style balanced thread histogram over sockets."""
    base = n // n_sockets
    tps = np.full(n_sockets, base, dtype=np.int64)
    tps[: n % n_sockets] += 1
    if np.any(tps > cores_per_socket):
        raise WorkloadError(f"{n} threads exceed node capacity")
    return tps


def scalability_curve(
    chars: WorkloadCharacteristics,
    node: NodeSpec,
    n_threads: np.ndarray | None = None,
    frequency_hz: float | None = None,
    shared_remote: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Ground-truth performance (iterations/s) vs. thread count.

    Threads are scattered across sockets (balanced split, the typical
    OpenMP default on a NUMA node) and memory is uncapped; frequency
    defaults to nominal.  Returns ``(n_values, perf_values)``.
    """
    model = GroundTruthModel(node)
    if n_threads is None:
        n_threads = np.arange(1, node.n_cores + 1)
    f = frequency_hz if frequency_hz is not None else node.socket.f_nominal
    full_bw = np.full(node.n_sockets, node.socket.memory.peak_bandwidth)
    perfs = np.empty(len(n_threads))
    from repro.hw.numa import NumaTopology

    topo = NumaTopology(node)
    for i, n in enumerate(np.asarray(n_threads, dtype=np.int64)):
        tps = _balanced_split(int(n), node.n_sockets, node.socket.n_cores)
        if shared_remote:
            shares = tps / tps.sum()
            p_remote = 1.0 - float(np.sum(shares**2))
            remote = chars.shared_fraction * p_remote
        else:
            remote = 0.0
        t = model.iteration_time(chars, tps, f, full_bw, remote_fraction=remote)
        perfs[i] = 1.0 / t.t_iter_s
    return np.asarray(n_threads, dtype=np.int64), perfs


def true_scalability_class(
    chars: WorkloadCharacteristics, node: NodeSpec
) -> str:
    """Ground-truth class from the paper's half/all-core ratio rule.

    ``perf_half / perf_all < 0.7`` → linear; ``< 1`` → logarithmic;
    ``>= 1`` → parabolic (§III-A.1).
    """
    ns, perfs = scalability_curve(
        chars, node, n_threads=np.array([node.n_cores // 2, node.n_cores])
    )
    ratio = perfs[0] / perfs[1]
    if ratio < 0.7:
        return "linear"
    if ratio < 1.0:
        return "logarithmic"
    return "parabolic"


def true_inflection_point(
    chars: WorkloadCharacteristics, node: NodeSpec
) -> int:
    """Ground-truth inflection point NP of the scalability curve.

    For parabolic curves NP is the performance peak.  For the others it
    is the breakpoint of the best two-segment piecewise-linear fit to
    the speedup curve (the point where the growth rate changes), found
    by exhaustive breakpoint search — cheap at <= 24 points.  Linear
    curves have no interior knee and report the full core count.

    The search runs on even thread counts only: the paper observes odd
    concurrency performs worse and floors predictions to even values
    (§V-B.2), and the even grid removes the odd-penalty sawtooth that
    would otherwise distract the piecewise fit.
    """
    even = np.arange(2, node.n_cores + 1, 2)
    ns, perfs = scalability_curve(chars, node, n_threads=even)
    speedup = perfs / perfs[0]
    peak = int(np.argmax(perfs))
    if peak < len(ns) - 1 and perfs[-1] < perfs[peak] * 0.995:
        return int(ns[peak])

    best_np, best_sse, best_k = int(ns[-1]), np.inf, None
    for k in range(1, len(ns) - 1):
        sse = _segment_sse(ns[: k + 1], speedup[: k + 1]) + _segment_sse(
            ns[k:], speedup[k:]
        )
        if sse < best_sse - 1e-15:
            best_sse, best_np, best_k = sse, int(ns[k]), k
    full_sse = _segment_sse(ns, speedup)
    # A genuinely linear curve is not meaningfully improved by a
    # breakpoint, and its two segment slopes stay similar.
    rel_fit = full_sse / max(float(np.var(speedup)) * len(ns), 1e-30)
    if best_k is None or rel_fit < 1e-4 or best_sse > 0.5 * full_sse:
        return int(ns[-1])
    slope_l = _segment_slope(ns[: best_k + 1], speedup[: best_k + 1])
    slope_r = _segment_slope(ns[best_k:], speedup[best_k:])
    if slope_l <= 0 or slope_r > 0.6 * slope_l:
        return int(ns[-1])
    return best_np


def _segment_slope(x: np.ndarray, y: np.ndarray) -> float:
    """Least-squares slope of the line through (x, y)."""
    if len(x) < 2:
        return 0.0
    return float(np.polyfit(x.astype(float), y, 1)[0])


def _segment_sse(x: np.ndarray, y: np.ndarray) -> float:
    """Sum of squared residuals of the least-squares line through (x, y)."""
    if len(x) < 2:
        return 0.0
    coeffs = np.polyfit(x.astype(float), y, 1)
    resid = y - np.polyval(coeffs, x.astype(float))
    return float(np.dot(resid, resid))
