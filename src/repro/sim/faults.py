"""Scripted fault injection for the power-bounded runtime and queue.

Power-bounded systems earn their robustness claims under *churn*: nodes
fail and come back, parts degrade, and the facility budget swings
mid-run.  This module turns the simulator into a testbed for exactly
those claims.  A :class:`FaultInjector` holds a script of timed
:class:`FaultEvent`\\ s and applies every event whose timestamp has
passed as simulated time advances:

* node churn — failure, recovery, degradation — and budget swings, as
  before (against a runtime, failures route through
  :meth:`~repro.core.runtime.PowerBoundedRuntime.fail_node` so running
  jobs shrink or park transactionally);
* **actuation faults** — ``cap_write_fail`` installs a seeded
  :class:`~repro.hw.actuation.FaultyActuation` dropping/mangling cap
  writes on one node (or the whole cluster), ``cap_drift`` makes
  writes read back clean while the silicon enforces a drifted limit;
* **telemetry faults** — ``sensor_noise`` and ``sensor_stale`` corrupt
  the watchdog-facing meter read path via
  :class:`~repro.hw.meter.TelemetryFault`;
* **crash** — raises :class:`~repro.errors.RuntimeCrashError`, the
  simulation analogue of the runtime process dying, so scenarios can
  prove :meth:`~repro.core.runtime.PowerBoundedRuntime.restore`
  rebuilds the exact pre-crash state from the journal.

Events sharing a timestamp fire in *script order* (the sort is stable
with an explicit sequence tiebreak), so "node 2 dies and the budget
drops at the same instant" behaves identically however the sort is
implemented.  Every cap set issued along the way lands on the shared
:class:`~repro.core.monitor.BudgetInvariantMonitor`, which is how a
scenario proves it never exceeded the cluster budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NodeFailureError, RuntimeCrashError, SchedulingError
from repro.hw.actuation import FaultyActuation
from repro.hw.cluster import SimulatedCluster
from repro.hw.meter import TelemetryFault

__all__ = ["FAULT_ACTIONS", "FaultEvent", "FaultInjector", "run_scripted"]

#: The event kinds a fault script may contain.
FAULT_ACTIONS = (
    "fail_node",
    "recover_node",
    "degrade_node",
    "set_budget",
    "cap_write_fail",
    "cap_drift",
    "sensor_noise",
    "sensor_stale",
    "crash",
)

#: Actions that target one node — or, with ``node_id=None``, every node.
_NODE_SCOPED = ("cap_write_fail", "cap_drift", "sensor_noise", "sensor_stale")


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault, fired when simulated time reaches ``at_s``.

    ``factor`` is overloaded per action: degradation multiplier for
    ``degrade_node``, drop probability for ``cap_write_fail``, relative
    drift for ``cap_drift`` (positive = node draws *above* its cap),
    relative noise sigma for ``sensor_noise``, and the number of frozen
    reads for ``sensor_stale``.  ``seed`` makes the injected fault's
    RNG stream reproducible.  The actuation/telemetry actions accept
    ``node_id=None`` meaning *every* node.
    """

    at_s: float
    action: str
    node_id: int | None = None
    factor: float | None = None
    budget_w: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise SchedulingError(f"event time must be >= 0, got {self.at_s}")
        if self.action not in FAULT_ACTIONS:
            raise SchedulingError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {FAULT_ACTIONS}"
            )
        if self.action in ("fail_node", "recover_node", "degrade_node"):
            if self.node_id is None:
                raise SchedulingError(f"{self.action} requires node_id")
        if self.action == "degrade_node" and (
            self.factor is None or self.factor <= 0
        ):
            raise SchedulingError("degrade_node requires factor > 0")
        if self.action == "set_budget" and (
            self.budget_w is None or self.budget_w <= 0
        ):
            raise SchedulingError("set_budget requires budget_w > 0")
        if self.action == "cap_write_fail" and (
            self.factor is None or not 0.0 < self.factor <= 1.0
        ):
            raise SchedulingError(
                "cap_write_fail requires factor in (0, 1] (drop probability)"
            )
        if self.action == "cap_drift" and (
            self.factor is None or self.factor == 0.0
        ):
            raise SchedulingError(
                "cap_drift requires a non-zero factor (relative drift)"
            )
        if self.action == "sensor_noise" and (
            self.factor is None or self.factor <= 0.0
        ):
            raise SchedulingError(
                "sensor_noise requires factor > 0 (relative sigma)"
            )
        if self.action == "sensor_stale" and (
            self.factor is None or self.factor < 1.0
        ):
            raise SchedulingError(
                "sensor_stale requires factor >= 1 (reads to freeze)"
            )

    def describe(self) -> str:
        """Human-readable one-liner for logs and demo output."""
        where = "all nodes" if self.node_id is None else f"node {self.node_id}"
        if self.action == "fail_node":
            detail = f"node {self.node_id} fails"
        elif self.action == "recover_node":
            detail = f"node {self.node_id} recovers"
        elif self.action == "degrade_node":
            detail = f"node {self.node_id} degrades x{self.factor:g}"
        elif self.action == "set_budget":
            detail = f"budget -> {self.budget_w:.0f} W"
        elif self.action == "cap_write_fail":
            detail = f"{where}: cap writes drop with p={self.factor:g}"
        elif self.action == "cap_drift":
            detail = f"{where}: cap enforcement drifts {self.factor:+.0%}"
        elif self.action == "sensor_noise":
            detail = f"{where}: sensor noise sigma={self.factor:g}"
        elif self.action == "sensor_stale":
            detail = f"{where}: sensor freezes for {self.factor:g} reads"
        else:  # crash
            detail = "runtime crashes"
        return f"t={self.at_s:.1f}s: {detail}"


class FaultInjector:
    """Applies a fault script against a cluster as time advances.

    The injector owns the *current* cluster budget (seeded with
    ``budget_w``, changed by ``set_budget`` events) and mutates the
    cluster directly for failure/recovery/degradation — unless a
    runtime is passed to :meth:`advance_to`, in which case node events
    route through the runtime so its jobs shrink or park.  Actuation
    and telemetry events install seeded fault models on the target
    nodes' RAPL interfaces and meters; a ``crash`` event raises
    :class:`~repro.errors.RuntimeCrashError` *after* recording itself
    as fired, so a restored runtime can resume the same script.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        events: list[FaultEvent] | tuple[FaultEvent, ...],
        budget_w: float | None = None,
    ):
        self._cluster = cluster
        # Stable order: equal-timestamp events must fire exactly as
        # scripted.  Python's sort is stable, but the script-position
        # tiebreak makes the contract explicit rather than incidental.
        self._events = [
            e
            for _, _, e in sorted(
                (e.at_s, i, e) for i, e in enumerate(events)
            )
        ]
        self._cursor = 0
        self._budget = budget_w
        self.fired: list[FaultEvent] = []
        # one mutable FaultyActuation / TelemetryFault per touched node,
        # so repeated events compose instead of resetting RNG streams
        self._actuation: dict[int, FaultyActuation] = {}
        self._telemetry: dict[int, TelemetryFault] = {}

    @property
    def cluster(self) -> SimulatedCluster:
        """The cluster this script mutates."""
        return self._cluster

    @property
    def budget_w(self) -> float | None:
        """The current cluster budget (``None`` until one is known)."""
        return self._budget

    @property
    def pending(self) -> tuple[FaultEvent, ...]:
        """Events not yet fired, in schedule order."""
        return tuple(self._events[self._cursor :])

    @property
    def exhausted(self) -> bool:
        """Whether every scripted event has fired."""
        return self._cursor >= len(self._events)

    # ------------------------------------------------------------------

    def _target_ids(self, event: FaultEvent) -> tuple[int, ...]:
        if event.node_id is not None:
            return (event.node_id,)
        return tuple(range(self._cluster.n_nodes))

    def _node_actuation(self, node_id: int, seed: int) -> FaultyActuation:
        policy = self._actuation.get(node_id)
        if policy is None:
            policy = FaultyActuation(seed=seed + node_id)
            self._actuation[node_id] = policy
            self._cluster.node(node_id).rapl.actuation = policy
        return policy

    def _node_telemetry(self, node_id: int, seed: int) -> TelemetryFault:
        fault = self._telemetry.get(node_id)
        if fault is None:
            fault = TelemetryFault(seed=seed + node_id)
            self._telemetry[node_id] = fault
            self._cluster.node(node_id).meter.telemetry = fault
        return fault

    def _apply(self, event: FaultEvent, runtime) -> None:
        if event.action == "fail_node":
            if runtime is not None:
                runtime.fail_node(event.node_id)
            else:
                self._cluster.fail_node(event.node_id)
        elif event.action == "recover_node":
            if runtime is not None:
                runtime.recover_node(event.node_id)
            else:
                self._cluster.recover_node(event.node_id)
        elif event.action == "degrade_node":
            self._cluster.degrade_node(event.node_id, event.factor)
            if runtime is not None:
                runtime.recalibrate()
        elif event.action == "set_budget":
            self._budget = event.budget_w
        elif event.action == "cap_write_fail":
            for nid in self._target_ids(event):
                self._node_actuation(nid, event.seed).drop_prob = event.factor
        elif event.action == "cap_drift":
            for nid in self._target_ids(event):
                policy = self._node_actuation(nid, event.seed)
                policy.drift_prob = 1.0
                policy.drift_frac = event.factor
        elif event.action == "sensor_noise":
            for nid in self._target_ids(event):
                self._node_telemetry(nid, event.seed).noise_frac = event.factor
        elif event.action == "sensor_stale":
            for nid in self._target_ids(event):
                self._node_telemetry(nid, event.seed).make_stale(
                    int(event.factor)
                )
        else:  # crash — recorded first so a restored runtime resumes after it
            self.fired.append(event)
            raise RuntimeCrashError(
                f"scripted crash at t={event.at_s:.1f}s"
            )
        self.fired.append(event)

    def advance_to(self, now_s: float, runtime=None) -> list[FaultEvent]:
        """Fire every event scheduled at or before *now_s*.

        Returns the events fired by this call, in order.  Pass the
        :class:`~repro.core.runtime.PowerBoundedRuntime` owning the
        affected jobs so failures shrink/park them transactionally.
        """
        out: list[FaultEvent] = []
        while (
            self._cursor < len(self._events)
            and self._events[self._cursor].at_s <= now_s
        ):
            event = self._events[self._cursor]
            self._cursor += 1
            self._apply(event, runtime)
            out.append(event)
        return out

    def fire_next(self, runtime=None) -> FaultEvent:
        """Fire the next pending event regardless of its timestamp.

        Models waiting for the machine room: a parked job makes no
        simulated progress, so the clock only moves because the next
        scripted event (typically the recovery) eventually happens.
        """
        if self.exhausted:
            raise SchedulingError("fault script is exhausted")
        event = self._events[self._cursor]
        self._cursor += 1
        self._apply(event, runtime)
        return event


def run_scripted(
    runtime,
    job,
    injector: FaultInjector,
    segment_iterations: int = 20,
):
    """Drive one runtime job to completion under a fault script.

    Between segments, fires every event due at the job's elapsed
    simulated time; budget events re-coordinate the job, and if a
    failure parks it, the loop fast-forwards the script (the job waits
    in place) until a recovery un-parks it.  Raises
    :class:`~repro.errors.NodeFailureError` if the job is parked and no
    scripted event remains to rescue it.  A scripted ``crash``
    propagates :class:`~repro.errors.RuntimeCrashError` to the caller —
    restore from the journal and call :func:`run_scripted` again with
    the restored job and the *same* injector to finish the script.
    """
    while not job.done:
        injector.advance_to(job.elapsed_s, runtime=runtime)
        while job.parked:
            if injector.exhausted:
                raise NodeFailureError(
                    f"job parked with no rescue left in the script: "
                    f"{job.park_reason}"
                )
            injector.fire_next(runtime=runtime)
        if (
            injector.budget_w is not None
            and injector.budget_w != job.budget_w
        ):
            runtime.update_budget(job, injector.budget_w)
        runtime.advance(job, segment_iterations)
    return job
