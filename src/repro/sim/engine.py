"""The steady-state execution engine.

Runs a workload on the simulated cluster under a concrete execution
configuration (nodes, threads, affinity, per-node power caps) and
returns a :class:`~repro.sim.trace.RunResult`.

The engine resolves the circular dependency between power capping and
performance by fixed-point iteration: the workload's bandwidth demand
and core activity depend on the iteration time, which depends on the
RAPL-resolved frequency and bandwidth, which depend on demand and
activity.  The loop is damped and converges in a handful of rounds
(each round is O(sockets) arithmetic, so a full cluster run costs
microseconds — cheap enough for the exhaustive oracle baseline).

Execution is bulk-synchronous: every iteration, all participating
nodes compute their local share, then exchange halos/collectives; the
slowest node paces the step, which is how manufacturing variability
turns into synchronization waste (§III-B.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import NodeFailureError, SchedulingError
from repro.hw.cluster import SimulatedCluster
from repro.hw.counters import synthesize_counters
from repro.hw.numa import AffinityKind
from repro.hw.power import PowerBreakdown
from repro.sim.affinity import Placement, make_placement, placement_for
from repro.sim.mpi import CommModel
from repro.sim.trace import NodeRunRecord, RunResult
from repro.workloads.characteristics import WorkloadCharacteristics
from repro.workloads.model import GroundTruthModel

__all__ = ["ExecutionConfig", "ExecutionEngine"]

#: Fixed-point iteration control.
_MAX_ROUNDS = 12
_DAMPING = 0.5
_REL_TOL = 1e-6

#: Activity floor used for cores idling at the step barrier.
_IDLE_ACTIVITY = 0.05


@dataclass(frozen=True)
class ExecutionConfig:
    """Everything the launcher decides before a run.

    ``pkg_cap_w`` / ``dram_cap_w`` are *per participating node* and
    cover all sockets of the node (``None`` leaves the factory default
    limit); ``gpu_cap_w`` additionally limits the device domain on
    accelerator-bearing nodes (silently ignored elsewhere, matching the
    hardware: the register does not exist).  ``per_node_caps``
    overrides them with one ``(pkg, dram)`` — or ``(pkg, dram, gpu)``
    for GPU slots — tuple per node for variability-coordinated
    allocations (§III-B.2).  ``node_ids`` selects specific nodes
    (defaults to the first ``n_nodes``).  ``phase_threads`` optionally
    overrides the thread count of named workload phases — the paper's
    BT-MZ phase-wise concurrency adjustment (§V-B.1).  ``scaling``
    chooses strong (divide the global problem over the nodes, the
    paper's setting) or weak (a reference-size domain per node)
    execution.
    """

    n_nodes: int
    n_threads: int
    affinity: AffinityKind | None = None
    pkg_cap_w: float | None = None
    dram_cap_w: float | None = None
    gpu_cap_w: float | None = None
    per_node_caps: tuple[tuple[float, ...], ...] | None = None
    node_ids: tuple[int, ...] | None = None
    frequency_hz: float | None = None
    iterations: int | None = None
    phase_threads: dict[str, int] = field(default_factory=dict)
    scaling: str = "strong"

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise SchedulingError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.n_threads < 1:
            raise SchedulingError(f"n_threads must be >= 1, got {self.n_threads}")
        if self.iterations is not None and self.iterations < 1:
            raise SchedulingError("iterations override must be >= 1")
        if self.per_node_caps is not None:
            if len(self.per_node_caps) != self.n_nodes:
                raise SchedulingError("per_node_caps must have one entry per node")
            if any(len(entry) not in (2, 3) for entry in self.per_node_caps):
                raise SchedulingError(
                    "per_node_caps entries must be (pkg, dram) or (pkg, dram, gpu)"
                )
        if self.node_ids is not None and len(self.node_ids) != self.n_nodes:
            raise SchedulingError("node_ids must have one entry per node")
        if self.scaling not in ("strong", "weak"):
            raise SchedulingError(
                f"scaling must be 'strong' or 'weak', got {self.scaling!r}"
            )

    def caps_for(self, rank: int) -> tuple[float | None, float | None]:
        """(PKG, DRAM) caps for the rank-th participating node."""
        if self.per_node_caps is not None:
            entry = self.per_node_caps[rank]
            return entry[0], entry[1]
        return self.pkg_cap_w, self.dram_cap_w

    def gpu_cap_for(self, rank: int) -> float | None:
        """GPU cap for the rank-th node (``None`` = uncapped/absent)."""
        if self.per_node_caps is not None:
            entry = self.per_node_caps[rank]
            return entry[2] if len(entry) > 2 else None
        return self.gpu_cap_w

    @property
    def node_budget_w(self) -> float | None:
        """Capped domain budget per node, when PKG and DRAM are set.

        Includes the GPU cap when one is programmed; CPU-only configs
        keep the legacy PKG+DRAM sum.
        """
        if self.pkg_cap_w is None or self.dram_cap_w is None:
            return None
        if self.gpu_cap_w is not None:
            return self.pkg_cap_w + self.dram_cap_w + self.gpu_cap_w
        return self.pkg_cap_w + self.dram_cap_w


class ExecutionEngine:
    """Runs workloads on a :class:`SimulatedCluster`.

    ``cache`` optionally attaches a :class:`~repro.sim.batch.RunCache`:
    when set, :meth:`run`, :meth:`evaluate` and :meth:`evaluate_many`
    memoize results on ``(app, config, seed, cluster spec, node
    efficiencies)``.  A cache hit skips the run's hardware side effects
    (RAPL energy accumulation, meter records), so attach a cache only
    where repeated *evaluation* is the point — search, profiling,
    benchmarks — not where per-run accounting matters.
    """

    def __init__(self, cluster: SimulatedCluster, seed: int = 42, cache=None):
        self._cluster = cluster
        # one ground-truth timing model per distinct hardware class
        self._models = {
            spec: GroundTruthModel(spec)
            for spec in dict.fromkeys(cluster.spec.node_specs)
        }
        self._model = self._models[cluster.spec.node_specs[0]]
        self._comm = CommModel(cluster.spec)
        self._seed = seed
        self._cache = cache
        self._batch = None
        self._calibration: dict = {}

    @property
    def cluster(self) -> SimulatedCluster:
        """The testbed this engine executes on."""
        return self._cluster

    @property
    def ground_truth(self) -> GroundTruthModel:
        """Slot-0 node-class timing model (for oracle/test use only)."""
        return self._model

    def ground_truth_for(self, node_spec) -> GroundTruthModel:
        """The timing model of one hardware class."""
        return self._models[node_spec]

    @property
    def comm_model(self) -> CommModel:
        """Inter-node communication model."""
        return self._comm

    @property
    def seed(self) -> int:
        """Seed of the per-run counter-noise RNG."""
        return self._seed

    @property
    def cache(self):
        """Attached :class:`~repro.sim.batch.RunCache` (or ``None``)."""
        return self._cache

    @cache.setter
    def cache(self, cache) -> None:
        self._cache = cache

    @property
    def calibration_cache(self) -> dict:
        """Cached node-factor calibrations keyed by cluster fingerprint."""
        return self._calibration

    def calibration_fingerprint(self, n_threads: int | None = None):
        """Key identifying the fleet state a calibration is valid for.

        Includes per-node efficiencies and the failed set, so
        ``fail_node`` / ``recover_node`` / ``degrade_node`` each change
        the fingerprint and invalidate cached factors by construction.
        """
        return (
            n_threads,
            self._cluster.spec,
            tuple(n.efficiency for n in self._cluster.nodes),
            self._cluster.failed_node_ids,
        )

    def cache_key(self, app: WorkloadCharacteristics, config: ExecutionConfig):
        """Memoization key for one (app, config) run on this engine.

        Includes the current per-node efficiency factors so cluster
        mutations (``degrade_node``) invalidate stale entries.
        """
        from repro.sim.batch import config_cache_key

        return (
            app,
            config_cache_key(config),
            self._seed,
            self._cluster.spec,
            tuple(n.efficiency for n in self._cluster.nodes),
        )

    # ------------------------------------------------------------------

    def evaluate_many(
        self, app: WorkloadCharacteristics, configs: list[ExecutionConfig]
    ) -> list[RunResult]:
        """Score many configs at once on the vectorized batch path.

        Returns one :class:`RunResult` per config, in order, identical
        to what :meth:`run` would produce — but computed as a single
        ``(n_candidates, n_nodes)`` array program and memoized through
        :attr:`cache` when one is attached.  No hardware side effects.
        """
        if self._batch is None:
            from repro.sim.batch import BatchEvaluator

            self._batch = BatchEvaluator(self)
        return self._batch.run_many(app, configs)

    def evaluate(
        self, app: WorkloadCharacteristics, config: ExecutionConfig
    ) -> RunResult:
        """Side-effect-free single-config evaluation (batch path)."""
        return self.evaluate_many(app, [config])[0]

    # ------------------------------------------------------------------

    def run(
        self, app: WorkloadCharacteristics, config: ExecutionConfig
    ) -> RunResult:
        """Execute *app* under *config* and return the result.

        Raises
        ------
        SchedulingError
            If the configuration does not fit the cluster.
        PowerDomainError
            If a cap is below the hardware floor for the requested
            concurrency (propagated from cap resolution).
        """
        if self._cache is not None:
            key = self.cache_key(app, config)
            hit = self._cache.get(key)
            if hit is not None:
                return hit
        cluster = self._cluster
        if config.n_nodes > cluster.n_nodes:
            raise SchedulingError(
                f"{config.n_nodes} nodes requested, cluster has {cluster.n_nodes}"
            )
        if config.node_ids is not None:
            participants = [cluster.node(i) for i in config.node_ids]
        else:
            participants = list(cluster.nodes[: config.n_nodes])
        min_cores = min(n.spec.n_cores for n in participants)
        if config.n_threads > min_cores:
            raise SchedulingError(
                f"{config.n_threads} threads requested, node has {min_cores} cores"
            )

        # Placement is identical on every node of one hardware class
        # (homogeneous job launch); mixed clusters place per class.
        placements: dict = {}
        phase_tps_by: dict = {}
        for part in participants:
            spec = part.spec
            if spec in placements:
                continue
            topo = part.numa
            if config.affinity is None:
                placement = placement_for(
                    topo,
                    config.n_threads,
                    app.shared_fraction,
                    app.is_memory_intensive,
                )
            else:
                placement = make_placement(
                    topo, config.n_threads, config.affinity, app.shared_fraction
                )
            placements[spec] = placement
            phase_tps_by[spec] = {
                name: tuple(
                    int(c)
                    for c in make_placement(
                        topo, n, placement.kind, app.shared_fraction
                    ).threads_per_socket
                )
                for name, n in config.phase_threads.items()
            }

        iterations = config.iterations or app.iterations
        # strong scaling divides the global problem over the nodes;
        # weak scaling gives every node a full reference-size domain
        work_fraction = (
            1.0 / config.n_nodes if config.scaling == "strong" else 1.0
        )

        down = [n.node_id for n in participants if not cluster.is_available(n.node_id)]
        if down:
            raise NodeFailureError(
                f"cannot run on failed node(s) {down}; "
                f"available: {list(cluster.available_node_ids)}"
            )

        records: list[NodeRunRecord] = []
        rng = self._run_rng(app, config)
        for rank, node in enumerate(participants):
            records.append(
                self._run_node(
                    node, app, config,
                    placements[node.spec], phase_tps_by[node.spec],
                    work_fraction, iterations, rng, rank,
                )
            )

        comm_s = self._comm.iteration_time(
            app, config.n_nodes, scaling=config.scaling
        )
        t_step = max(r.t_iter_s for r in records) + comm_s
        total_time = iterations * t_step

        # Energy: each node is busy for its own iteration time and
        # idles at the barrier for the remainder of every step.
        energy = 0.0
        peak = 0.0
        final_records = []
        for node, rec in zip(participants, records):
            spec = node.spec
            placement = placements[spec]
            busy_frac = rec.t_iter_s / t_step if t_step > 0 else 1.0
            idle_pkg = sum(
                node.power_model.pkg_power(
                    c, spec.socket.f_min, _IDLE_ACTIVITY
                )
                for c in placement.threads_per_socket
            )
            idle_dram = spec.n_sockets * node.power_model.dram_power(0.0)
            avg_pkg = rec.operating_point.pkg_power_w * busy_frac + idle_pkg * (
                1.0 - busy_frac
            )
            avg_dram = rec.operating_point.dram_power_w * busy_frac + idle_dram * (
                1.0 - busy_frac
            )
            if spec.has_gpu:
                # The board falls back to its idle floor while the host
                # waits at the step barrier.
                idle_gpu = spec.p_gpu_idle_w * node.efficiency
                avg_gpu = rec.operating_point.gpu_power_w * busy_frac + idle_gpu * (
                    1.0 - busy_frac
                )
                node_energy = (
                    avg_pkg + avg_dram + avg_gpu + spec.p_other_w
                ) * total_time
                peak += (
                    rec.operating_point.pkg_power_w
                    + rec.operating_point.dram_power_w
                    + rec.operating_point.gpu_power_w
                )
            else:
                avg_gpu = 0.0
                node_energy = (avg_pkg + avg_dram + spec.p_other_w) * total_time
                peak += (
                    rec.operating_point.pkg_power_w
                    + rec.operating_point.dram_power_w
                )
            energy += node_energy
            node.rapl.accumulate(rec.operating_point, iterations * rec.t_iter_s)
            node.meter.record(
                PowerBreakdown(
                    pkg_w=avg_pkg,
                    dram_w=avg_dram,
                    other_w=spec.p_other_w,
                    gpu_w=avg_gpu if spec.has_gpu else None,
                ),
                total_time,
            )
            final_records.append(
                NodeRunRecord(
                    node_id=rec.node_id,
                    operating_point=rec.operating_point,
                    t_iter_s=rec.t_iter_s,
                    activity=rec.activity,
                    busy_fraction=busy_frac,
                    avg_pkg_w=avg_pkg,
                    avg_dram_w=avg_dram,
                    events=rec.events,
                    phase_times=rec.phase_times,
                    avg_gpu_w=avg_gpu,
                    gpu_busy_fraction=rec.gpu_busy_fraction,
                )
            )
        first_spec = participants[0].spec
        if all(n.spec == first_spec for n in participants):
            # seed's count * value arithmetic, kept bit-identical
            peak += config.n_nodes * first_spec.p_other_w
        else:
            for node in participants:
                peak += node.spec.p_other_w

        result = RunResult(
            app_name=app.name,
            n_nodes=config.n_nodes,
            n_threads_per_node=config.n_threads,
            affinity=placements[first_spec].kind.value,
            iterations=iterations,
            t_step_s=t_step,
            comm_s=comm_s,
            total_time_s=total_time,
            energy_j=energy,
            avg_power_w=energy / total_time if total_time > 0 else 0.0,
            peak_power_w=peak,
            nodes=tuple(final_records),
        )
        if self._cache is not None:
            self._cache.put(key, result)
        return result

    # ------------------------------------------------------------------

    def _run_node(
        self,
        node,
        app: WorkloadCharacteristics,
        config: ExecutionConfig,
        placement: Placement,
        phase_tps: dict[str, tuple[int, ...]],
        work_fraction: float,
        iterations: int,
        rng: np.random.Generator,
        rank: int = 0,
    ) -> NodeRunRecord:
        """Fixed-point resolve one node's steady state."""
        pkg_cap, dram_cap = config.caps_for(rank)
        node.set_power_caps(pkg_cap, dram_cap, config.gpu_cap_for(rank))
        model = self._models[node.spec]
        # The device clock is sized once, against worst-case (fully
        # busy) draw, so it is independent of the damped host loop.
        gpu_rate = 0.0
        gpu_clock = 0.0
        gpu_throttled = gpu_violated = False
        if node.spec.has_gpu and app.gpu_fraction > 0:
            gpu_clock, gpu_throttled, gpu_violated = node.rapl.resolve_gpu()
            gpu_rate = model.device_rate(app, gpu_clock)
        mem = node.spec.socket.memory
        tps = placement.threads_per_socket
        activity = 0.9
        demand = tuple(
            mem.peak_bandwidth if c > 0 else 0.0 for c in tps
        )
        timing = None
        prev_t = None
        op = None
        for _ in range(_MAX_ROUNDS):
            op = node.rapl.resolve(
                tps, activity, demand, config.frequency_hz
            )
            timing = model.iteration_time(
                app,
                tps,
                op.effective_frequency_hz,
                op.bandwidth_per_socket,
                remote_fraction=placement.remote_fraction,
                work_fraction=work_fraction,
                phase_threads=phase_tps or None,
                gpu_rate=gpu_rate,
            )
            activity = _DAMPING * activity + (1 - _DAMPING) * timing.activity
            demand = tuple(
                _DAMPING * d + (1 - _DAMPING) * nd
                for d, nd in zip(demand, timing.bw_demand_per_socket)
            )
            if prev_t is not None and abs(timing.t_iter_s - prev_t) <= _REL_TOL * prev_t:
                break
            prev_t = timing.t_iter_s

        # Final consistency pass with converged activity/demand.
        op = node.rapl.resolve(
            tps, timing.activity, timing.bw_demand_per_socket, config.frequency_hz
        )
        if node.spec.has_gpu:
            # Device power over the busy iteration: dynamic draw for the
            # share of the step the kernels run, idle floor otherwise.
            # A board with nothing offloaded still idles on the bus.
            if gpu_rate > 0:
                gpu_w = node.power_model.gpu_power(
                    gpu_clock, timing.device_busy_fraction
                )
            else:
                gpu_w = node.spec.p_gpu_idle_w * node.efficiency
            op = replace(
                op,
                gpu_clock_hz=gpu_clock,
                gpu_power_w=gpu_w,
                gpu_throttled=gpu_throttled,
                gpu_cap_violated=gpu_violated,
            )
        events = synthesize_counters(
            instructions=timing.instructions * iterations,
            duration_s=timing.t_iter_s * iterations,
            n_threads=placement.n_threads,
            frequency_hz=op.effective_frequency_hz,
            dram_bytes=timing.dram_bytes * iterations,
            remote_fraction=placement.remote_fraction,
            icache_mpki=app.icache_mpki,
            rng=rng,
        )
        return NodeRunRecord(
            node_id=node.node_id,
            operating_point=op,
            t_iter_s=timing.t_iter_s,
            activity=timing.activity,
            busy_fraction=1.0,
            avg_pkg_w=op.pkg_power_w,
            avg_dram_w=op.dram_power_w,
            events=events,
            phase_times=timing.phase_times,
            avg_gpu_w=op.gpu_power_w,
            gpu_busy_fraction=timing.device_busy_fraction,
        )

    def _run_rng(
        self, app: WorkloadCharacteristics, config: ExecutionConfig
    ) -> np.random.Generator:
        """Deterministic per-(app, config) RNG for counter noise."""
        name_hash = sum(ord(c) * (i + 1) for i, c in enumerate(app.name)) % (2**31)
        return np.random.default_rng(
            [self._seed, name_hash, config.n_nodes, config.n_threads]
        )
