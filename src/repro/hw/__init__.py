"""Simulated hardware substrate.

This package models the paper's experimental testbed — an 8-node cluster
of dual-socket Haswell (Xeon E5-2670 v3) machines — at the level of
detail CLIP actually interacts with:

* :mod:`repro.hw.specs` — static machine descriptions and the
  :func:`~repro.hw.specs.haswell_testbed` factory,
* :mod:`repro.hw.dvfs` — the discrete frequency ladder and P-states,
* :mod:`repro.hw.power` — the ground-truth analytic power model,
* :mod:`repro.hw.rapl` — RAPL-like power domains (PKG / DRAM) with
  energy counters and cap enforcement,
* :mod:`repro.hw.numa` — NUMA topology and remote-access penalties,
* :mod:`repro.hw.counters` — synthesis of the Table-I hardware events,
* :mod:`repro.hw.variability` — manufacturing variability,
* :mod:`repro.hw.meter` — sampled power traces,
* :mod:`repro.hw.node` / :mod:`repro.hw.cluster` — composition.

The substrate is *analytic*: instead of cycle-level simulation it
resolves a steady-state operating point (frequency, bandwidth, power)
for a given workload phase, which is the granularity at which RAPL and
the paper's scheduler operate (milliseconds and above).
"""

from repro.hw.specs import (
    CoreSpec,
    SocketSpec,
    MemorySpec,
    NodeSpec,
    NodeGroup,
    ClusterSpec,
    haswell_node,
    haswell_testbed,
    broadwell_node,
    broadwell_testbed,
    mixed_testbed,
)
from repro.hw.dvfs import FrequencyLadder, DvfsController
from repro.hw.power import PowerModel, PowerBreakdown
from repro.hw.rapl import RaplDomain, RaplInterface, Domain
from repro.hw.governor import GovernorSample, RaplGovernor
from repro.hw.thermal import ThermalModel, ThermalSample, ThermalSpec
from repro.hw.numa import NumaTopology, AffinityKind
from repro.hw.counters import EventCounters, EVENT_NAMES
from repro.hw.variability import VariabilityModel
from repro.hw.meter import PowerMeter, PowerSample
from repro.hw.node import SimulatedNode
from repro.hw.cluster import SimulatedCluster

__all__ = [
    "CoreSpec",
    "SocketSpec",
    "MemorySpec",
    "NodeSpec",
    "NodeGroup",
    "ClusterSpec",
    "haswell_node",
    "haswell_testbed",
    "broadwell_node",
    "broadwell_testbed",
    "mixed_testbed",
    "FrequencyLadder",
    "DvfsController",
    "PowerModel",
    "PowerBreakdown",
    "RaplDomain",
    "RaplInterface",
    "Domain",
    "GovernorSample",
    "RaplGovernor",
    "ThermalModel",
    "ThermalSample",
    "ThermalSpec",
    "NumaTopology",
    "AffinityKind",
    "EventCounters",
    "EVENT_NAMES",
    "VariabilityModel",
    "PowerMeter",
    "PowerSample",
    "SimulatedNode",
    "SimulatedCluster",
]
