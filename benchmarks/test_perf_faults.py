"""Build gate for the fault-tolerant runtime's budget invariants.

Runs the canonical fault scenario (node failure + recovery + two
budget swings over the 6-job demo queue) under both queue policies,
records the measurements to ``BENCH_faults.json`` at the repository
root, and **fails the build** if the budget-invariant monitor flagged
any issued cap set.
"""

from bench_faults import run_faults_bench


def test_fault_scenario_invariants(report):
    payload = run_faults_bench()
    policies = payload["policies"]

    lines = [
        "Fault-scenario drain — failure + recovery + two budget swings "
        f"({len(payload['apps'])} jobs at {payload['budget_w']:.0f} W)",
    ]
    for name, p in policies.items():
        mon = p["monitor"]
        lines.append(
            f"  {name:12s}: {p['jobs_drained']} jobs, "
            f"{p['events_fired']} events fired, "
            f"makespan {p['faulted_makespan_s']:.0f} s "
            f"(clean {p['clean_makespan_s']:.0f} s), "
            f"{mon['n_violations']} violation(s) / {mon['n_audits']} audits"
        )
    report("perf_faults", "\n".join(lines))

    for name, p in policies.items():
        # every job drains despite the faults, under either policy
        # (the coscheduled queue is doubled to span several batches)
        assert p["jobs_drained"] % len(payload["apps"]) == 0, name
        assert p["jobs_drained"] >= len(payload["apps"]), name
        # the scenario actually exercised the fault path
        assert p["events_fired"] >= 2, name
        assert p["monitor"]["n_audits"] > 0, name
        # the hard gate: no issued cap set may break the invariants
        assert p["monitor"]["n_violations"] == 0, p["monitor"]["violations"]
    assert payload["total_violations"] == 0
