"""Generality: CLIP on a platform it was never calibrated for.

The paper motivates its profile-driven design with "hardware evolution
causes the old methods to lose precision" (§III-A) — fixed regression
models tuned on one generation break on the next.  These tests run the
whole pipeline on a Broadwell-class testbed (20-core sockets, different
clocks, TDP, and bandwidth) with a predictor *retrained from profiles
on that platform*, and check the decisions stay sane.
"""

import pytest

from repro.analysis.traces import audit_cap_violations
from repro.baselines import AllInScheduler
from repro.core.inflection import InflectionPredictor
from repro.core.knowledge import KnowledgeDB
from repro.core.profile import SmartProfiler
from repro.core.scheduler import ClipScheduler
from repro.hw.cluster import SimulatedCluster
from repro.hw.specs import broadwell_node, broadwell_testbed
from repro.sim.engine import ExecutionEngine
from repro.workloads.apps import get_app
from repro.workloads.suites import training_corpus


@pytest.fixture(scope="module")
def broadwell():
    cluster = SimulatedCluster(broadwell_testbed())
    engine = ExecutionEngine(cluster, seed=42)
    predictor = InflectionPredictor()
    predictor.fit_from_corpus(
        training_corpus(cluster.spec.node, n_synthetic=30, seed=9),
        SmartProfiler(engine),
    )
    clip = ClipScheduler(engine, inflection=predictor, knowledge=KnowledgeDB())
    return engine, clip


class TestPlatformSpec:
    def test_broadwell_shape(self):
        node = broadwell_node()
        assert node.n_cores == 40
        assert node.socket.f_nominal == pytest.approx(2.2e9)
        assert node.peak_bandwidth > 1.3e11

    def test_testbed_builds(self):
        cluster = SimulatedCluster(broadwell_testbed(n_nodes=4))
        assert cluster.n_nodes == 4


class TestPipelineOnBroadwell:
    @pytest.mark.parametrize(
        "name", ["comd", "sp-mz.C", "bt-mz.C", "stream", "tealeaf", "ep.C"]
    )
    def test_schedules_and_respects_budget(self, broadwell, name):
        engine, clip = broadwell
        decision, result = clip.run(get_app(name), 1600.0, iterations=2)
        assert 2 <= decision.n_threads <= 40
        assert decision.total_capped_w <= 1600.0 * (1 + 1e-9)
        assert audit_cap_violations(result) == []
        drawn = sum(
            r.operating_point.pkg_power_w + r.operating_point.dram_power_w
            for r in result.nodes
        )
        assert drawn <= 1600.0 * (1 + 1e-6)

    def test_classes_are_platform_dependent_but_sane(self, broadwell):
        # bt-mz's exch_qbc phase saturates at 12 threads: on a 40-core
        # node the all-core run pays heavy oversubscription and the
        # app legitimately profiles parabolic here (classes are a
        # property of app x platform, not of the app alone)
        engine, clip = broadwell
        entry = clip.ensure_knowledge(get_app("bt-mz.C"))
        assert entry.profile.scalability_class.value in (
            "logarithmic", "parabolic",
        )
        # EP stays linear on any platform
        ep = clip.ensure_knowledge(get_app("ep.C"))
        assert ep.profile.scalability_class.value == "linear"

    def test_linear_app_uses_all_forty_cores(self, broadwell):
        engine, clip = broadwell
        decision = clip.schedule(get_app("comd"), 2000.0)
        assert decision.n_threads == 40

    def test_no_degenerate_tiny_concurrency(self, broadwell):
        # regression guard for the inverted-hyperbola extrapolation bug:
        # a production solver must never be scheduled on 2 threads of a
        # 40-core node at a comfortable budget
        engine, clip = broadwell
        for name in ("bt-mz.C", "sp-mz.C", "tealeaf"):
            decision = clip.schedule(get_app(name), 1600.0)
            assert decision.n_threads >= 8, name

    def test_clip_beats_allin_on_parabolic_here_too(self, broadwell):
        engine, clip = broadwell
        app = get_app("sp-mz.C")
        _, clip_r = clip.run(app, 1600.0, iterations=2)
        allin_r = AllInScheduler(engine).run(app, 1600.0, iterations=2)
        assert clip_r.performance > allin_r.performance * 1.15
