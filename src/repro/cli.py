"""Command-line interface: ``clip-sched`` / ``python -m repro``.

Subcommands mirror the framework's helper tools (§IV-B):

* ``apps``      — list the predefined applications;
* ``profile``   — smart-profile an application and print the result;
* ``classify``  — just the scalability classification;
* ``schedule``  — run Algorithm 1 for a budget and print the decision
  (and launch script); ``--json`` emits the serialized decision plus
  per-stage pipeline timings instead;
* ``run``       — schedule *and* execute on the simulated testbed;
* ``compare``   — the four-method comparison at one budget.

All commands operate on the simulated 8-node Haswell testbed.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.experiments import (
    build_trained_inflection,
    compare_methods,
    make_schedulers,
)
from repro.analysis.tables import render_table
from repro.core.execution import render_script
from repro.core.profile import SmartProfiler
from repro.core.scheduler import ClipScheduler
from repro.errors import ClipError
from repro.hw.cluster import SimulatedCluster
from repro.sim.engine import ExecutionEngine
from repro.workloads.apps import all_apps, get_app

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="clip-sched",
        description="CLIP power-bounded scheduling on a simulated Haswell cluster",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="simulation seed (default 42)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list predefined applications")

    p = sub.add_parser("profile", help="smart-profile an application")
    p.add_argument("app", help="application name (see `apps`)")

    p = sub.add_parser("classify", help="classify an application's scalability")
    p.add_argument("app")

    for name, help_ in (
        ("schedule", "run Algorithm 1 and print the decision"),
        ("run", "schedule and execute on the simulated testbed"),
    ):
        p = sub.add_parser(name, help=help_)
        p.add_argument("app")
        p.add_argument("budget", type=float, help="cluster power budget (W)")
        p.add_argument(
            "--mode",
            choices=("predictive", "simple"),
            default="predictive",
            help="node-count selection: model-scored or Algorithm 1 literal",
        )
        if name == "schedule":
            p.add_argument(
                "--json",
                action="store_true",
                help="print the serialized decision and per-stage trace "
                "timings as JSON instead of the launch script",
            )

    p = sub.add_parser("compare", help="compare the four methods at one budget")
    p.add_argument("budget", type=float)
    p.add_argument(
        "--apps", nargs="*", default=None, help="subset of application names"
    )

    p = sub.add_parser(
        "report", help="assemble the reproduction report from benchmark artifacts"
    )
    p.add_argument(
        "--results",
        default="benchmarks/results",
        help="directory the benchmarks wrote their tables to",
    )
    return parser


def _engine(seed: int) -> ExecutionEngine:
    return ExecutionEngine(SimulatedCluster.testbed(), seed=seed)


def cmd_apps(_args) -> int:
    rows = [
        [a.name, a.problem_size, a.description[:48]]
        for a in all_apps()
    ]
    print(render_table(["name", "input", "description"], rows))
    return 0


def cmd_profile(args) -> int:
    engine = _engine(args.seed)
    profile = SmartProfiler(engine).profile(get_app(args.app))
    rows = [
        ["class", profile.scalability_class.value],
        ["Perf_half / Perf_all", f"{profile.ratio:.3f}"],
        ["affinity", profile.affinity.value],
        ["memory intensive", str(profile.memory_intensive)],
        ["all-core PKG / DRAM (W)",
         f"{profile.all_run.pkg_w:.1f} / {profile.all_run.dram_w:.1f}"],
        ["low-freq PKG / DRAM (W)",
         f"{profile.all_run.pkg_lo_w:.1f} / {profile.all_run.dram_lo_w:.1f}"],
        ["measured bandwidth (GB/s)",
         f"{profile.all_run.events.memory_bandwidth / 1e9:.1f}"],
    ]
    print(render_table(["metric", "value"], rows, title=f"Profile: {args.app}"))
    return 0


def cmd_classify(args) -> int:
    engine = _engine(args.seed)
    profile = SmartProfiler(engine).profile(get_app(args.app))
    print(f"{args.app}: {profile.scalability_class.value} (ratio {profile.ratio:.3f})")
    return 0


def _scheduler(engine: ExecutionEngine) -> ClipScheduler:
    print("Training CLIP's inflection predictor...", file=sys.stderr)
    return ClipScheduler(engine, inflection=build_trained_inflection(engine))


def cmd_schedule(args) -> int:
    engine = _engine(args.seed)
    app = get_app(args.app)
    clip = _scheduler(engine)
    if args.json:
        decision, trace = clip.schedule_traced(
            app, args.budget, allocation_mode=args.mode
        )
        print(
            json.dumps(
                {"decision": decision.to_dict(), "trace": trace.to_dict()},
                indent=2,
            )
        )
        return 0
    decision = clip.schedule(app, args.budget, allocation_mode=args.mode)
    print(render_script(app, decision))
    print(
        f"predicted performance: {decision.predicted_perf:.3f} it/s "
        f"({decision.scalability_class.value}, NP={decision.inflection_point})"
    )
    return 0


def cmd_run(args) -> int:
    engine = _engine(args.seed)
    app = get_app(args.app)
    clip = _scheduler(engine)
    decision, result = clip.run(app, args.budget, allocation_mode=args.mode)
    print(render_script(app, decision))
    print(result.summary())
    return 0


def cmd_compare(args) -> int:
    engine = _engine(args.seed)
    apps = (
        [get_app(n) for n in args.apps]
        if args.apps
        else list(all_apps()[:10])
    )
    print("Profiling and training (one-time)...", file=sys.stderr)
    comp = compare_methods(
        engine, apps, [args.budget], make_schedulers(engine), iterations=3
    )
    methods = ["All-In", "Lower-Limit", "Coordinated", "CLIP"]
    rows = [
        [a.name] + [comp.cell(m, a.name, args.budget).relative for m in methods]
        for a in apps
    ]
    print(
        render_table(
            ["Benchmark"] + methods,
            rows,
            title=f"Relative performance at {args.budget:.0f} W",
        )
    )
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import assemble_report

    print(assemble_report(args.results))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "apps": cmd_apps,
        "profile": cmd_profile,
        "classify": cmd_classify,
        "schedule": cmd_schedule,
        "run": cmd_run,
        "compare": cmd_compare,
        "report": cmd_report,
    }[args.command]
    try:
        return handler(args)
    except ClipError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
