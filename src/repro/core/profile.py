"""The Smart Profiling Module (§IV-B.1).

Profiles an application with at most three short sample executions on a
single node:

1. **all-core** run with sufficient (uncapped) power — measures memory
   bandwidth and cross-NUMA intensity to pick the core affinity;
2. **half-core** run with that affinity — together with run 1 this
   yields the classification ratio and the Table-I event rates;
3. an optional **confirmation** run at the predicted inflection point
   for non-linear applications — "the last step uses the predicted
   configuration and measures the events and power again to deduct the
   model".

Each sample runs only a few iterations of the application ("smart
profiling with a few iterations incurs minimal overhead" compared to
the hundreds or thousands of iterations of a production run).

The profiler sees exactly what the real framework sees: wall times,
RAPL power, and PMU events.  It never touches the workload's
ground-truth characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.classify import ScalabilityClass, classify_ratio
from repro.errors import ProfilingError
from repro.hw.counters import EventCounters
from repro.hw.numa import AffinityKind
from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["SampleRun", "AppProfile", "SmartProfiler"]

#: Fraction of node peak DRAM bandwidth above which the profiler calls
#: the application memory-intensive and scatters its threads.
MEMORY_INTENSIVE_BW_FRACTION = 0.35

#: Iterations per sample execution (a "few iterations" per §IV-B.1).
DEFAULT_PROFILE_ITERATIONS = 5

#: Measured device-busy fraction above which an application is treated
#: as accelerator-offloaded.  The classification is observational, like
#: the ratio rule: the profiler looks at how much of the all-core
#: sample's iteration the device spent busy, not at any workload
#: metadata.  Offload ports sit well above this (≈0.4–0.8 on the
#: simulated testbed); host-only codes measure exactly 0.
GPU_OFFLOAD_BUSY_THRESHOLD = 0.3


@dataclass(frozen=True)
class SampleRun:
    """One profiling execution's measurements.

    Each sample configuration is executed at the two frequency
    extremes (a brief low-frequency phase inside the same profiling
    job): the ``*_w`` fields are the highest-frequency measurements
    (the paper's L1 power levels) and the ``*_lo_w`` fields the
    lowest-frequency ones (L2, §III-B.1).  Performance and events come
    from the high-frequency phase.
    """

    n_threads: int
    affinity: AffinityKind
    perf: float
    t_iter_s: float
    pkg_w: float
    dram_w: float
    frequency_hz: float
    pkg_lo_w: float
    dram_lo_w: float
    frequency_lo_hz: float
    t_iter_lo_s: float
    events: EventCounters
    phase_times: tuple[tuple[str, float], ...] = ()
    #: Time-averaged accelerator power at the highest frequency
    #: (0 on CPU-only nodes — the GPU domain is absent, not idle).
    gpu_w: float = 0.0
    #: Accelerator power during the low-frequency phase.
    gpu_lo_w: float = 0.0
    #: Share of the iteration the device spent busy.
    gpu_busy_fraction: float = 0.0
    #: Device clock the sample resolved to (0 without a device).
    gpu_clock_hz: float = 0.0

    @property
    def capped_w(self) -> float:
        """Host RAPL power at the highest frequency (PKG + DRAM).

        Deliberately excludes the accelerator: the host power model is
        fitted from these samples, and the GPU domain has its own
        ladder-derived model.  Use :attr:`gpu_w` for the device share.
        """
        return self.pkg_w + self.dram_w

    @property
    def capped_lo_w(self) -> float:
        """Host RAPL power at the lowest frequency."""
        return self.pkg_lo_w + self.dram_lo_w

    @property
    def device_s(self) -> float:
        """Measured device-busy time per iteration (seconds)."""
        return self.gpu_busy_fraction * self.t_iter_s


@dataclass(frozen=True)
class AppProfile:
    """Everything the profiler learned about one application + input."""

    app_name: str
    problem_size: str
    n_cores: int
    peak_node_bandwidth: float
    all_run: SampleRun
    half_run: SampleRun
    confirm_run: SampleRun | None = None

    @property
    def ratio(self) -> float:
        """The classification ratio Perf_half / Perf_all."""
        return self.half_run.perf / self.all_run.perf

    @property
    def scalability_class(self) -> ScalabilityClass:
        """Scalability class from the paper's threshold rule.

        A measured device-busy fraction above
        :data:`GPU_OFFLOAD_BUSY_THRESHOLD` takes precedence: when the
        accelerator carries the iteration, host thread scaling no
        longer describes the application and the coordinator must
        balance the host and device power domains instead.
        """
        if self.all_run.gpu_busy_fraction > GPU_OFFLOAD_BUSY_THRESHOLD:
            return ScalabilityClass.GPU_OFFLOAD
        return classify_ratio(self.half_run.perf, self.all_run.perf)

    @property
    def gpu_offloaded(self) -> bool:
        """Whether the device-busy measurement drove the class."""
        return self.all_run.gpu_busy_fraction > GPU_OFFLOAD_BUSY_THRESHOLD

    @property
    def affinity(self) -> AffinityKind:
        """The mapping preference chosen from the all-core run."""
        return self.half_run.affinity

    @property
    def memory_intensive(self) -> bool:
        """Whether the all-core run saturated a bandwidth threshold."""
        return (
            self.all_run.events.memory_bandwidth
            > MEMORY_INTENSIVE_BW_FRACTION * self.peak_node_bandwidth
        )

    @property
    def n_samples(self) -> int:
        """How many sample executions this profile used (2 or 3)."""
        return 2 if self.confirm_run is None else 3

    def sample_runs(self) -> tuple[SampleRun, ...]:
        """All sample runs, half-core first (ascending thread count)."""
        runs = [self.half_run, self.all_run]
        if self.confirm_run is not None:
            runs.append(self.confirm_run)
        return tuple(sorted(runs, key=lambda r: r.n_threads))

    def feature_vector(self) -> np.ndarray:
        """MLR feature vector from the Table-I event rates.

        Rates from the all-core and half-core runs are normalized to
        scale-free quantities (per instruction / per cycle / fractions)
        so the regression is independent of problem size, then the
        full/half performance ratio (event7) is appended, plus one
        engineered combination: the roofline knee estimate — the
        thread count at which the half-core run's per-thread
        instruction rate would consume the saturated bandwidth — which
        is exactly the quantity the raw events encode about "which
        concurrency level can cause performance stagnancy" (§III-A.2).
        """
        feats: list[float] = []
        for run in (self.all_run, self.half_run):
            ev = run.events
            instr = max(ev.event6, 1.0)
            cycles = max(ev.event5, 1.0)
            feats.extend(
                [
                    ev.event0 / instr * 1e3,  # icache MPKI
                    ev.memory_bandwidth / self.peak_node_bandwidth,
                    (ev.event1 + ev.event2) / instr,  # bytes/instr
                    ev.remote_miss_fraction,
                    ev.event6 / cycles,  # IPC
                ]
            )
        feats.append(self.all_run.perf / self.half_run.perf)  # event7
        feats.append(self.roofline_knee_estimate() / self.n_cores)
        return np.array(feats)

    def roofline_knee_estimate(self) -> float:
        """Thread count where bandwidth saturation should begin.

        Computed purely from measured event rates: the saturated node
        bandwidth divided by one thread's traffic rate in the (mostly
        unsaturated) half-core run.  Clipped to [1, 2 * n_cores] so
        compute-bound codes (near-zero traffic) stay finite.
        """
        half = self.half_run.events
        bw_sat = max(
            self.all_run.events.memory_bandwidth, half.memory_bandwidth
        )
        per_thread = half.memory_bandwidth / max(self.half_run.n_threads, 1)
        if per_thread <= 0:
            return 2.0 * self.n_cores
        return float(np.clip(bw_sat / per_thread, 1.0, 2.0 * self.n_cores))


class SmartProfiler:
    """Runs the 2–3 sample executions and assembles an AppProfile."""

    def __init__(
        self,
        engine: ExecutionEngine,
        iterations: int = DEFAULT_PROFILE_ITERATIONS,
    ):
        if iterations < 1:
            raise ProfilingError("profiling needs at least one iteration")
        self._engine = engine
        self._iterations = iterations
        # samples run single-node on slot 0, so the profile describes
        # the cluster's primary hardware class
        node = engine.cluster.spec.node_specs[0]
        self._node_spec = node
        self._n_cores = node.n_cores
        self._peak_bw = node.peak_bandwidth

    @property
    def iterations(self) -> int:
        """Iterations each sample execution runs."""
        return self._iterations

    @property
    def node_spec(self):
        """The node class the sample executions run on (slot 0's)."""
        return self._node_spec

    def _sample(
        self,
        app: WorkloadCharacteristics,
        n_threads: int,
        affinity: AffinityKind,
    ) -> SampleRun:
        """Execute one single-node sample configuration.

        The sample spends its iterations pinned at the nominal
        frequency and then a couple at the lowest P-state, yielding the
        L1 and L2 power levels of §III-B.1 within one profiling job.
        Pinning matters: with turbo left on, a half-core sample clocks
        higher than an all-core sample and the classification ratio
        would conflate frequency headroom with thread scalability.
        """
        socket = self._node_spec.socket
        # Both frequency points of the sample go through the batched
        # evaluation path as one candidate set: a single array program,
        # memoized via the engine cache when one is attached.
        result, low_result = self._engine.evaluate_many(
            app,
            [
                ExecutionConfig(
                    n_nodes=1,
                    n_threads=n_threads,
                    affinity=affinity,
                    iterations=self._iterations,
                    frequency_hz=socket.f_nominal,
                ),
                ExecutionConfig(
                    n_nodes=1,
                    n_threads=n_threads,
                    affinity=affinity,
                    iterations=max(2, self._iterations // 2),
                    frequency_hz=socket.f_min,
                ),
            ],
        )
        rec = result.nodes[0]
        low = low_result.nodes[0]
        return SampleRun(
            n_threads=n_threads,
            affinity=affinity,
            perf=result.performance,
            t_iter_s=rec.t_iter_s,
            pkg_w=rec.operating_point.pkg_power_w,
            dram_w=rec.operating_point.dram_power_w,
            frequency_hz=rec.operating_point.frequency_hz,
            pkg_lo_w=low.operating_point.pkg_power_w,
            dram_lo_w=low.operating_point.dram_power_w,
            frequency_lo_hz=low.operating_point.frequency_hz,
            t_iter_lo_s=low.t_iter_s,
            events=rec.events,
            phase_times=rec.phase_times,
            gpu_w=rec.avg_gpu_w,
            gpu_lo_w=low.avg_gpu_w,
            gpu_busy_fraction=rec.gpu_busy_fraction,
            gpu_clock_hz=rec.operating_point.gpu_clock_hz,
        )

    def profile(self, app: WorkloadCharacteristics) -> AppProfile:
        """Run the two mandatory samples and build the profile."""
        # Step 1: all cores, sufficient power; both sockets are used so
        # the affinity families coincide — measure, then decide the
        # mapping preference for the half-core run.
        all_run = self._sample(app, self._n_cores, AffinityKind.SCATTER)
        memory_intensive = (
            all_run.events.memory_bandwidth
            > MEMORY_INTENSIVE_BW_FRACTION * self._peak_bw
        )
        half_affinity = (
            AffinityKind.SCATTER if memory_intensive else AffinityKind.COMPACT
        )
        # Step 2: half cores with the chosen mapping.
        half_run = self._sample(app, self._n_cores // 2, half_affinity)

        ratio_full_half = all_run.perf / half_run.perf
        all_run = replace(
            all_run, events=all_run.events.with_perf_ratio(ratio_full_half)
        )
        half_run = replace(
            half_run, events=half_run.events.with_perf_ratio(ratio_full_half)
        )
        return AppProfile(
            app_name=app.name,
            problem_size=app.problem_size,
            n_cores=self._n_cores,
            peak_node_bandwidth=self._peak_bw,
            all_run=all_run,
            half_run=half_run,
        )

    def confirm(
        self,
        app: WorkloadCharacteristics,
        profile: AppProfile,
        n_threads: int,
    ) -> AppProfile:
        """Run the third sample at the predicted configuration.

        Returns a new profile with ``confirm_run`` populated; used for
        the non-linear classes to anchor the piecewise model's second
        point at the inflection point.
        """
        if profile.app_name != app.name:
            raise ProfilingError(
                f"profile is for {profile.app_name!r}, not {app.name!r}"
            )
        if not 1 <= n_threads <= profile.n_cores:
            raise ProfilingError(
                f"confirm thread count {n_threads} outside [1, {profile.n_cores}]"
            )
        run = self._sample(app, n_threads, profile.affinity)
        run = replace(
            run,
            events=run.events.with_perf_ratio(profile.all_run.events.event7),
        )
        return replace(profile, confirm_run=run)
