"""Mixed-fleet scheduling throughput and per-class bundle caching.

Times ``ClipScheduler.schedule`` on the heterogeneous 4× Haswell +
4× Broadwell testbed: a cold pass (profiling plus one model-bundle fit
per hardware class) against warm budget-sweep decisions riding the
``(app, problem_size, node_class)``-keyed cache.  Results are written
to ``BENCH_hetero.json`` at the repository root, alongside
``BENCH_pipeline.json``.

Run standalone with ``python benchmarks/bench_hetero.py`` or through
``benchmarks/test_perf_hetero.py`` (which also asserts the warm path
is measurably faster and every audit stays clean).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.experiments import build_trained_inflection
from repro.core.scheduler import ClipScheduler
from repro.hw.cluster import SimulatedCluster
from repro.sim.engine import ExecutionEngine
from repro.workloads.apps import get_app

BENCH_PATH = REPO_ROOT / "BENCH_hetero.json"

APPS = ("comd", "minimd", "sp-mz.C", "bt-mz.C", "tealeaf", "cloverleaf.128")
BUDGETS_W = (1000.0, 1300.0, 1600.0, 1900.0, 2200.0, 2500.0)
WARM_ROUNDS = 3


def _fresh_scheduler() -> ClipScheduler:
    engine = ExecutionEngine(SimulatedCluster.mixed_testbed(), seed=42)
    return ClipScheduler(engine, inflection=build_trained_inflection(engine))


def run_hetero_bench() -> dict:
    """Time cold vs warm mixed-fleet decisions; report cache behavior."""
    apps = [get_app(name) for name in APPS]
    clip = _fresh_scheduler()
    n_classes = len(set(clip.engine.cluster.spec.node_specs))

    # cold: first decision per app — profiling + one bundle per class
    start = time.perf_counter()
    for app in apps:
        clip.schedule(app, 1600.0)
    cold_s = time.perf_counter() - start

    # warm: the same apps across a budget sweep — knowledge hits plus
    # per-class cached bundles; nothing is profiled or re-fitted
    start = time.perf_counter()
    n_warm = 0
    for _ in range(WARM_ROUNDS):
        for app in apps:
            for budget in BUDGETS_W:
                clip.schedule(app, budget)
                n_warm += 1
    warm_s = time.perf_counter() - start

    clip.monitor.assert_clean()

    cold_per_decision = cold_s / len(apps)
    warm_per_decision = warm_s / n_warm
    cache = clip.pipeline.bundle_cache
    lookups = cache.hits + cache.misses
    payload = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "testbed": clip.engine.cluster.spec.name,
        "node_classes": n_classes,
        "apps": list(APPS),
        "budgets_w": list(BUDGETS_W),
        "cold": {
            "decisions": len(apps),
            "total_s": cold_s,
            "per_decision_s": cold_per_decision,
        },
        "warm": {
            "decisions": n_warm,
            "total_s": warm_s,
            "per_decision_s": warm_per_decision,
        },
        "warm_speedup": cold_per_decision / warm_per_decision,
        "bundle_cache": {
            "bundles": len(cache),
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": cache.hits / lookups if lookups else 0.0,
        },
        "audits": {
            "n_audits": clip.monitor.n_audits,
            "n_violations": clip.monitor.n_violations,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main() -> int:
    payload = run_hetero_bench()
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
