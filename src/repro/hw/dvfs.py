"""Dynamic voltage and frequency scaling (DVFS).

:class:`FrequencyLadder` wraps a socket's discrete P-state table and
answers the two questions the rest of the system asks:

* "what frequencies may I run at?" (quantization, neighbors), and
* "what is the highest frequency whose package power fits under a cap?"
  — the core of RAPL cap resolution in :mod:`repro.hw.rapl`.

:class:`DvfsController` holds mutable per-core frequency state for one
socket, mirroring per-core DVFS on Haswell (Fig. 5 of the paper notes
"per-core DVFS is available").
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence

import numpy as np

from repro.errors import SpecError
from repro.hw.specs import GpuSpec, SocketSpec

__all__ = ["FrequencyLadder", "DvfsController"]


class FrequencyLadder:
    """An ascending table of permitted core frequencies (Hz)."""

    def __init__(self, frequencies: Sequence[float]):
        freqs = tuple(float(f) for f in frequencies)
        if not freqs:
            raise SpecError("frequency ladder must be non-empty")
        if any(f <= 0 for f in freqs):
            raise SpecError("frequencies must be positive")
        if tuple(sorted(freqs)) != freqs or len(set(freqs)) != len(freqs):
            raise SpecError("frequency ladder must be strictly ascending")
        self._freqs = freqs

    @classmethod
    def from_socket(cls, socket: SocketSpec) -> "FrequencyLadder":
        """Build the ladder declared by a socket specification."""
        return cls(socket.freq_ladder)

    @classmethod
    def from_gpu(cls, gpu: GpuSpec) -> "FrequencyLadder":
        """Build the clock ladder declared by an accelerator spec."""
        return cls(gpu.clock_ladder_hz)

    @property
    def frequencies(self) -> tuple[float, ...]:
        """All permitted frequencies, ascending."""
        return self._freqs

    @property
    def f_min(self) -> float:
        """Lowest P-state."""
        return self._freqs[0]

    @property
    def f_max(self) -> float:
        """Highest P-state (turbo ceiling)."""
        return self._freqs[-1]

    def __len__(self) -> int:
        return len(self._freqs)

    def __contains__(self, f: float) -> bool:
        i = bisect.bisect_left(self._freqs, f)
        return i < len(self._freqs) and abs(self._freqs[i] - f) < 1e-3

    def quantize_down(self, f: float) -> float:
        """Largest ladder frequency <= *f* (clamped to ``f_min``)."""
        i = bisect.bisect_right(self._freqs, f + 1e-6)
        return self._freqs[max(0, i - 1)]

    def quantize_up(self, f: float) -> float:
        """Smallest ladder frequency >= *f* (clamped to ``f_max``)."""
        i = bisect.bisect_left(self._freqs, f - 1e-6)
        return self._freqs[min(len(self._freqs) - 1, i)]

    def step_down(self, f: float) -> float:
        """One P-state below *f* (saturating at ``f_min``)."""
        i = bisect.bisect_left(self._freqs, f - 1e-6)
        return self._freqs[max(0, i - 1)]

    def step_up(self, f: float) -> float:
        """One P-state above *f* (saturating at ``f_max``)."""
        i = bisect.bisect_right(self._freqs, f + 1e-6)
        return self._freqs[min(len(self._freqs) - 1, i)]

    def highest_under(self, predicate) -> float | None:
        """Highest frequency for which ``predicate(f)`` is true.

        *predicate* must be monotone (true for low f implies true for
        all lower f); this is exactly the shape of "power fits under a
        cap".  The search is a descending linear scan — ladders have at
        most a few dozen entries, so binary search would buy nothing
        (per the guides: measure before optimizing).

        Returns ``None`` if the predicate fails even at ``f_min``.
        """
        for f in reversed(self._freqs):
            if predicate(f):
                return f
        return None


class DvfsController:
    """Mutable per-core frequency state for one socket."""

    def __init__(self, socket: SocketSpec):
        self._socket = socket
        self._ladder = FrequencyLadder.from_socket(socket)
        self._freqs = np.full(socket.n_cores, socket.f_nominal, dtype=np.float64)

    @property
    def ladder(self) -> FrequencyLadder:
        """The P-state table this controller selects from."""
        return self._ladder

    @property
    def frequencies(self) -> np.ndarray:
        """Current per-core frequencies (a defensive copy)."""
        return self._freqs.copy()

    def frequency_of(self, core: int) -> float:
        """Current frequency of *core*."""
        self._check_core(core)
        return float(self._freqs[core])

    def set_core(self, core: int, f: float) -> float:
        """Pin *core* to the ladder frequency nearest below *f*.

        Returns the frequency actually applied.
        """
        self._check_core(core)
        applied = self._ladder.quantize_down(f)
        self._freqs[core] = applied
        return applied

    def set_all(self, f: float) -> float:
        """Pin every core to the ladder frequency nearest below *f*."""
        applied = self._ladder.quantize_down(f)
        self._freqs[:] = applied
        return applied

    def reset(self) -> None:
        """Return every core to the nominal frequency."""
        self._freqs[:] = self._socket.f_nominal

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self._socket.n_cores:
            raise SpecError(
                f"core index {core} outside [0, {self._socket.n_cores})"
            )
