"""NUMA topology: socket layout, distances, and placement queries.

The paper's nodes are dual-socket NUMA machines; CLIP's node level
chooses both *how many* threads to run and *where* to put them
("core-thread affinity", §I).  This module provides the topology facts
those decisions consume:

* which cores belong to which socket,
* the ACPI-SLIT-style distance matrix (local 10, one-hop remote 21),
* the remote-access fraction implied by a placement and a page policy.

Placement policies themselves live in :mod:`repro.sim.affinity`; this
module is policy-free.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import AffinityError, SpecError
from repro.hw.specs import NodeSpec

__all__ = ["AffinityKind", "NumaTopology"]

#: Conventional SLIT distances for local and one-hop-remote accesses.
LOCAL_DISTANCE = 10
REMOTE_DISTANCE = 21


class AffinityKind(enum.Enum):
    """Thread placement families the framework selects between.

    COMPACT fills one socket before spilling to the next — best for
    workloads dominated by shared-cache reuse and synchronization.
    SCATTER round-robins threads across sockets — best for
    bandwidth-bound workloads because it engages both memory
    controllers.  This is the "mapping preference" CLIP's smart
    profiler distinguishes (§IV-B.1, citing [16]).
    """

    COMPACT = "compact"
    SCATTER = "scatter"


class NumaTopology:
    """Socket/core layout of one node and distance queries."""

    def __init__(self, node: NodeSpec):
        self._node = node
        self._n_sockets = node.n_sockets
        self._cores_per_socket = node.socket.n_cores
        n = self._n_sockets
        self._distances = np.full((n, n), REMOTE_DISTANCE, dtype=np.int64)
        np.fill_diagonal(self._distances, LOCAL_DISTANCE)

    @property
    def n_sockets(self) -> int:
        """Number of NUMA domains (sockets)."""
        return self._n_sockets

    @property
    def cores_per_socket(self) -> int:
        """Physical cores per socket."""
        return self._cores_per_socket

    @property
    def n_cores(self) -> int:
        """Total cores on the node."""
        return self._n_sockets * self._cores_per_socket

    @property
    def distances(self) -> np.ndarray:
        """SLIT-style distance matrix (copy)."""
        return self._distances.copy()

    def socket_of(self, core: int) -> int:
        """NUMA domain owning *core*.  Cores are numbered socket-major."""
        if not 0 <= core < self.n_cores:
            raise AffinityError(f"core {core} outside [0, {self.n_cores})")
        return core // self._cores_per_socket

    def cores_of(self, socket: int) -> range:
        """Core ids belonging to *socket*."""
        if not 0 <= socket < self._n_sockets:
            raise AffinityError(
                f"socket {socket} outside [0, {self._n_sockets})"
            )
        start = socket * self._cores_per_socket
        return range(start, start + self._cores_per_socket)

    def threads_per_socket(self, placement) -> np.ndarray:
        """Histogram of a placement's threads over sockets.

        *placement* is a sequence of core ids (one per thread).
        """
        counts = np.zeros(self._n_sockets, dtype=np.int64)
        seen: set[int] = set()
        for core in placement:
            if core in seen:
                raise AffinityError(f"core {core} assigned to two threads")
            seen.add(core)
            counts[self.socket_of(core)] += 1
        return counts

    def sockets_used(self, placement) -> int:
        """Number of sockets with at least one thread."""
        return int(np.count_nonzero(self.threads_per_socket(placement)))

    def remote_access_fraction(
        self, placement, shared_fraction: float
    ) -> float:
        """Fraction of memory accesses crossing the QPI link.

        The model assumes first-touch page placement: a thread's
        *private* pages are always local, while accesses to the
        application's *shared* working set (a ``shared_fraction`` of all
        accesses) land on each socket proportionally to its thread
        count.  For a placement with thread shares :math:`s_i` per
        socket, the probability a shared access is remote is
        :math:`1 - \\sum_i s_i^2` (access issued by socket *i* with
        probability :math:`s_i`, data homed on socket *j* with
        probability :math:`s_j`).
        """
        if not 0.0 <= shared_fraction <= 1.0:
            raise SpecError(f"shared_fraction must lie in [0,1]: {shared_fraction}")
        counts = self.threads_per_socket(placement)
        total = counts.sum()
        if total == 0:
            return 0.0
        shares = counts / total
        p_remote_shared = 1.0 - float(np.sum(shares**2))
        return shared_fraction * p_remote_shared
