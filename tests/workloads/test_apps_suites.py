"""Tests for the Table-II calibrations, generators, and suites.

The central assertion: each Table-II application *emerges* with the
scalability class the paper measured (Fig. 6), with an inflection point
in the plausible range the paper's Fig. 7 reports.
"""

import pytest

from repro.errors import WorkloadError
from repro.hw.specs import haswell_node
from repro.workloads.apps import TABLE2_APPS, all_apps, get_app
from repro.workloads.generator import SyntheticAppGenerator
from repro.workloads.model import true_inflection_point, true_scalability_class
from repro.workloads.suites import NAMED_TRAINING_APPS, training_corpus

NODE = haswell_node()

#: Table II "Scalability Type" column (ground truth per the paper).
PAPER_CLASSES = {
    "bt-mz.C": "logarithmic",
    "lu-mz.C": "logarithmic",
    "sp-mz.C": "parabolic",
    "comd": "linear",
    "amg": "linear",
    "miniaero": "parabolic",
    "minimd": "linear",
    "tealeaf": "parabolic",
    "cloverleaf.128": "logarithmic",
    "cloverleaf.16": "logarithmic",
}


class TestTable2Calibration:
    def test_ten_benchmarks(self):
        assert len(TABLE2_APPS) == 10

    def test_unique_names(self):
        names = [a.name for a in all_apps()]
        assert len(names) == len(set(names))

    @pytest.mark.parametrize("app", TABLE2_APPS, ids=lambda a: a.name)
    def test_emergent_class_matches_paper(self, app):
        assert true_scalability_class(app, NODE) == PAPER_CLASSES[app.name]

    @pytest.mark.parametrize(
        "app",
        [a for a in TABLE2_APPS if PAPER_CLASSES[a.name] != "linear"],
        ids=lambda a: a.name,
    )
    def test_nonlinear_apps_have_interior_knee(self, app):
        np_ = true_inflection_point(app, NODE)
        assert 8 <= np_ <= 20, f"{app.name}: NP={np_} outside Fig.-7 range"

    def test_extra_apps_classes(self):
        assert true_scalability_class(get_app("ep.C"), NODE) == "linear"
        assert true_scalability_class(get_app("stream"), NODE) == "logarithmic"
        assert true_scalability_class(get_app("sp.C"), NODE) == "parabolic"

    def test_cloverleaf_inputs_share_code_differ_in_size(self):
        big = get_app("cloverleaf.128")
        small = get_app("cloverleaf.16")
        assert big.instructions_per_iter > small.instructions_per_iter

    def test_bt_mz_has_exchange_phase(self):
        bt = get_app("bt-mz.C")
        names = [p.name for p in bt.phases]
        assert "exch_qbc" in names
        exch = next(p for p in bt.phases if p.name == "exch_qbc")
        assert exch.max_useful_threads is not None

    def test_get_app_unknown_raises_with_names(self):
        with pytest.raises(WorkloadError, match="bt-mz.C"):
            get_app("nonexistent")


class TestGenerator:
    def test_deterministic(self):
        a = SyntheticAppGenerator(NODE, seed=3).draw()
        b = SyntheticAppGenerator(NODE, seed=3).draw()
        assert a.instructions_per_iter == b.instructions_per_iter
        assert a.bytes_per_instruction == b.bytes_per_instruction

    def test_unique_names(self):
        gen = SyntheticAppGenerator(NODE, seed=3)
        names = {gen.draw().name for _ in range(10)}
        assert len(names) == 10

    def test_draw_class_delivers(self):
        gen = SyntheticAppGenerator(NODE, seed=3)
        for want in ("linear", "logarithmic", "parabolic"):
            app = gen.draw_class(want)
            assert true_scalability_class(app, NODE) == want

    def test_draw_class_rejects_unknown(self):
        with pytest.raises(WorkloadError):
            SyntheticAppGenerator(NODE).draw_class("quadratic")

    def test_corpus_counts(self):
        gen = SyntheticAppGenerator(NODE, seed=3)
        corpus = gen.corpus(2, 3, 2)
        assert len(corpus) == 7
        classes = [true_scalability_class(a, NODE) for a in corpus]
        assert classes.count("linear") == 2
        assert classes.count("logarithmic") == 3
        assert classes.count("parabolic") == 2


class TestSuites:
    def test_named_members_cover_all_classes(self):
        classes = {
            true_scalability_class(a, NODE) for a in NAMED_TRAINING_APPS
        }
        assert classes == {"linear", "logarithmic", "parabolic"}

    def test_training_corpus_size(self):
        corpus = training_corpus(NODE, n_synthetic=8, seed=3)
        assert len(corpus) == len(NAMED_TRAINING_APPS) + 8

    def test_training_corpus_deterministic(self):
        a = training_corpus(NODE, n_synthetic=4, seed=3)
        b = training_corpus(NODE, n_synthetic=4, seed=3)
        assert [x.name for x in a] == [y.name for y in b]

    def test_ep_and_stream_archetypes_present(self):
        names = {a.name for a in NAMED_TRAINING_APPS}
        assert "npb.ep.train" in names
        assert "stream.triad.train" in names


class TestSuiteStability:
    """The named training members' classes are calibration contracts."""


    EXPECTED = {
        "npb.ep.train": "linear",
        "npb.sp.train": "logarithmic",
        "hpcc.dgemm.train": "linear",
        "stream.triad.train": "logarithmic",
        "poly.gemver.train": "parabolic",
        "poly.correlation.train": "linear",
        "npb.cg.train": "logarithmic",
    }

    @pytest.mark.parametrize("name,expected", sorted(EXPECTED.items()))
    def test_named_member_class(self, name, expected):
        app = next(a for a in NAMED_TRAINING_APPS if a.name == name)
        assert true_scalability_class(app, NODE) == expected
