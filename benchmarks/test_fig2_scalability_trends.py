"""Figure 2 — the three scalability trends vs. cores and frequency.

The paper plots performance against thread count at several processor
frequencies for a linear (2a), a logarithmic (2b), and a parabolic (2c)
application, observing: linear growth for (a); linear growth up to an
inflection point then reduced growth for (b); growth then *decline*
past the peak for (c); and S(freq) proportional to freq throughout.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.units import ghz
from repro.workloads.apps import get_app
from repro.workloads.model import scalability_curve, true_inflection_point
from conftest import run_once

PANELS = (("2a", "ep.C"), ("2b", "bt-mz.C"), ("2c", "sp-mz.C"))
FREQS_GHZ = (1.2, 1.8, 2.3)
THREADS = np.arange(2, 25, 2)


def sweep(node):
    curves = {}
    for panel, name in PANELS:
        app = get_app(name)
        for f in FREQS_GHZ:
            ns, perfs = scalability_curve(
                app, node, n_threads=THREADS, frequency_hz=ghz(f)
            )
            curves[(panel, f)] = perfs
    return curves


def test_fig2_scalability_trends(benchmark, engine, report):
    node = engine.cluster.spec.node
    curves = run_once(benchmark, lambda: sweep(node))

    lines = []
    for panel, name in PANELS:
        rows = [
            [f"{f:.1f} GHz"] + list(curves[(panel, f)]) for f in FREQS_GHZ
        ]
        lines.append(
            render_table(
                ["frequency"] + [f"n={n}" for n in THREADS],
                rows,
                title=f"Fig. {panel} — {name} performance (iterations/s) vs threads",
                float_fmt="{:.3f}",
            )
        )
    report("fig2", "\n\n".join(lines))

    # panel (a): linear — monotone growth, near-proportional to n
    lin = curves[("2a", 2.3)]
    assert np.all(np.diff(lin) > 0)
    assert lin[-1] / lin[0] > 8.0  # 24 threads vs 2: close to 12x

    # panel (b): logarithmic — grows, but late growth is much weaker
    log = curves[("2b", 2.3)]
    assert log[-1] >= log[0]
    early_gain = log[3] / log[0]
    late_gain = log[-1] / log[7]
    assert early_gain > 2.0
    assert late_gain < 1.3

    # panel (c): parabolic — interior peak, decline afterwards
    par = curves[("2c", 2.3)]
    peak = int(np.argmax(par))
    assert 0 < peak < len(par) - 1
    assert par[-1] < par[peak] * 0.95

    # S(freq) ~ freq for the compute-bound panel at fixed threads
    ep_ratio = curves[("2a", 2.3)][5] / curves[("2a", 1.2)][5]
    np.testing.assert_allclose(ep_ratio, 2.3 / 1.2, rtol=0.1)

    # the logarithmic knee sits where the exhaustive search puts it
    np_true = true_inflection_point(get_app("bt-mz.C"), node)
    assert 10 <= np_true <= 18
