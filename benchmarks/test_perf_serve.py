"""Perf guard for the ``clip-sched serve`` daemon.

Runs the HTTP load generator against a thread-hosted daemon, records
the measurements to ``BENCH_serve.json`` at the repository root, and
enforces the service acceptance bar: sustained decision throughput,
bounded per-decision overhead over bare ``schedule_many``, and a clean
budget-audit ledger under concurrent load.
"""

from bench_serve import run_serve_bench

#: The daemon must sustain at least this many decisions per second
#: under saturated concurrent load (ISSUE 9 acceptance floor).
MIN_SUSTAINED_RATE = 500.0
#: Warm per-decision service cost (HTTP + coalescing + records) may be
#: at most this multiple of bare ``schedule_many`` on the same mix.
MAX_SERVICE_OVERHEAD = 3.0


def test_serve_throughput_and_overhead(report):
    payload = run_serve_bench()
    bare = payload["bare_schedule_many"]
    paced = payload["paced"]
    saturated = payload["saturated"]
    daemon = payload["daemon"]

    lines = [
        "clip-sched serve — HTTP load generator "
        f"({paced['threads']} clients, bursts of {paced['batch_size']})",
        f"  bare     : {bare['per_decision_s'] * 1e3:8.3f} ms/decision "
        f"(schedule_many, {bare['decisions']} decisions)",
        f"  paced    : {paced['achieved_rate']:8.0f} decisions/s offered "
        f"{paced['target_rate']:.0f} "
        f"(burst p50 {paced['burst_latency_p50_ms']:.1f} ms, "
        f"p95 {paced['burst_latency_p95_ms']:.1f} ms)",
        f"  saturated: {saturated['decisions_per_s']:8.0f} decisions/s "
        f"({saturated['decisions']} decisions, "
        f"{saturated['per_decision_s'] * 1e3:.3f} ms each, "
        f"{payload['service_overhead']:.2f}x bare)",
        f"  coalescing: {daemon['bursts']} bursts, "
        f"mean {daemon['mean_burst']:.1f} jobs, max {daemon['max_burst']}",
        f"  audits: {daemon['audits']} "
        f"(violations {daemon['audit_violations']})",
    ]
    report("perf_serve", "\n".join(lines))

    # Correctness first: every submission decided, none failed or
    # rejected, and no budget-invariant violation under load.
    assert daemon["decided"] == daemon["submitted"], daemon
    assert daemon["failed"] == 0, daemon
    assert daemon["rejected"] == 0, daemon
    assert daemon["audit_violations"] == 0, daemon
    # Concurrent submissions actually coalesced into multi-job bursts.
    assert daemon["mean_burst"] > 1.0, daemon
    # The acceptance bar.
    assert saturated["decisions_per_s"] >= MIN_SUSTAINED_RATE, payload
    assert payload["service_overhead"] <= MAX_SERVICE_OVERHEAD, payload
