"""Command-line interface: ``clip-sched`` / ``python -m repro``.

Subcommands mirror the framework's helper tools (§IV-B):

* ``apps``      — list the predefined applications;
* ``profile``   — smart-profile an application and print the result;
* ``classify``  — just the scalability classification;
* ``schedule``  — run Algorithm 1 for a budget and print the decision
  (and launch script); ``--json`` emits the serialized decision plus
  per-stage pipeline timings instead;
* ``run``       — schedule *and* execute on the simulated testbed;
* ``compare``   — the four-method comparison at one budget;
* ``faults``    — drain a queue through a scripted fault scenario
  (node failure + recovery + budget swings) and print the
  budget-invariant audit; ``--chaos`` adds enforcement faults
  (drifting caps, dropped writes, lying sensors) and drains behind an
  :class:`~repro.core.watchdog.EnforcementGuard`;
* ``replay``    — rebuild a runtime from its journal and print the
  recovered state; ``--demo`` runs the full crash-recovery story
  (journaled run, scripted crash, restore, bit-identity check,
  resume);
* ``serve``     — run the long-lived scheduling daemon: an asyncio
  HTTP/JSON API (submit-job, query-decision, update-budget,
  stream-telemetry) that coalesces concurrent submissions into
  ``schedule_many`` bursts, with admission control and per-tenant
  budget quotas.

Commands default to the simulated 8-node Haswell testbed; the
``schedule``, ``run``, ``compare`` and ``faults`` subcommands accept
``--testbed {haswell,broadwell,mixed,gpu,mixed-gpu}`` to target the
Broadwell fleet, the mixed 4×Haswell + 4×Broadwell cluster, the
GPU-equipped fleet, or the mixed 4×GPU + 4×CPU fleet instead.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import __version__
from repro.analysis.experiments import (
    build_trained_inflection,
    compare_methods,
    make_schedulers,
)
from repro.analysis.tables import render_table
from repro.core.execution import render_script
from repro.core.profile import SmartProfiler
from repro.core.scheduler import ClipScheduler
from repro.errors import ClipError
from repro.hw.cluster import SimulatedCluster
from repro.hw.specs import (
    broadwell_testbed,
    gpu_testbed,
    haswell_testbed,
    mixed_gpu_testbed,
    mixed_testbed,
)
from repro.sim.engine import ExecutionEngine
from repro.workloads.apps import all_apps, get_app

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="clip-sched",
        description="CLIP power-bounded scheduling on a simulated cluster",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="simulation seed (default 42)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_testbed(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--testbed",
            choices=("haswell", "broadwell", "mixed", "gpu", "mixed-gpu"),
            default="haswell",
            help="simulated cluster: 8x Haswell (default), 8x Broadwell, "
            "the mixed 4x Haswell + 4x Broadwell fleet, the 8x GPU-node "
            "fleet, or the mixed 4x GPU + 4x CPU fleet",
        )
        p.add_argument(
            "--racks",
            type=int,
            default=1,
            help="replicate the testbed into N racks behind one fabric "
            "(default 1: the paper's flat testbed)",
        )

    sub.add_parser("apps", help="list predefined applications")

    p = sub.add_parser("profile", help="smart-profile an application")
    p.add_argument("app", help="application name (see `apps`)")

    p = sub.add_parser("classify", help="classify an application's scalability")
    p.add_argument("app")

    for name, help_ in (
        ("schedule", "run Algorithm 1 and print the decision"),
        ("run", "schedule and execute on the simulated testbed"),
    ):
        p = sub.add_parser(name, help=help_)
        add_testbed(p)
        p.add_argument("app")
        p.add_argument("budget", type=float, help="cluster power budget (W)")
        p.add_argument(
            "--mode",
            choices=("predictive", "simple"),
            default="predictive",
            help="node-count selection: model-scored or Algorithm 1 literal",
        )
        if name == "schedule":
            p.add_argument(
                "--json",
                action="store_true",
                help="print the serialized decision and per-stage trace "
                "timings as JSON instead of the launch script",
            )

    p = sub.add_parser("compare", help="compare the four methods at one budget")
    add_testbed(p)
    p.add_argument("budget", type=float)
    p.add_argument(
        "--apps", nargs="*", default=None, help="subset of application names"
    )

    p = sub.add_parser(
        "faults",
        help="drain a job queue through a scripted fault scenario",
    )
    add_testbed(p)
    p.add_argument(
        "--policy",
        choices=("sequential", "coscheduled"),
        default="sequential",
        help="queue policy to drain under faults",
    )
    p.add_argument(
        "--budget", type=float, default=1600.0,
        help="initial cluster power budget (W, default 1600)",
    )
    p.add_argument(
        "--iterations", type=int, default=5,
        help="iterations per job (default 5, keeps the demo fast)",
    )
    p.add_argument(
        "--chaos",
        action="store_true",
        help="also inject enforcement faults (cap drift, dropped cap "
        "writes, noisy and stale sensors) and drain behind an "
        "EnforcementGuard",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the queue report and monitor audit as JSON",
    )

    p = sub.add_parser(
        "replay",
        help="rebuild a runtime from its journal and print the state",
    )
    add_testbed(p)
    p.add_argument(
        "journal",
        nargs="?",
        default=None,
        help="journal file written by a PowerBoundedRuntime "
        "(omit with --demo)",
    )
    p.add_argument(
        "--demo",
        action="store_true",
        help="run the crash-recovery demo: journal a run, crash it "
        "mid-flight, restore, verify bit-identity, resume",
    )
    p.add_argument(
        "--budget", type=float, default=1200.0,
        help="cluster budget for the --demo run (W, default 1200)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the recovered state as JSON",
    )

    p = sub.add_parser(
        "serve",
        help="run the scheduling daemon (HTTP/JSON, burst coalescing)",
    )
    add_testbed(p)
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8587,
        help="TCP port (default 8587; 0 picks an ephemeral port)",
    )
    p.add_argument(
        "--budget", type=float, default=1400.0,
        help="initial cluster power budget (W, default 1400)",
    )
    p.add_argument(
        "--window-ms", type=float, default=0.0,
        help="coalescing window in ms (default 0: pure drain batching "
        "— whatever queued while the previous burst decided)",
    )
    p.add_argument(
        "--max-burst", type=int, default=512,
        help="largest burst handed to schedule_many (default 512)",
    )
    p.add_argument(
        "--max-pending", type=int, default=4096,
        help="admission control: queued-job bound (default 4096)",
    )
    p.add_argument(
        "--quota",
        action="append",
        default=[],
        metavar="TENANT=WATTS[:MAX_PENDING]",
        help="per-tenant budget quota (repeatable); the tenant's jobs "
        "are planned under min(service budget, WATTS), with at most "
        "MAX_PENDING queued at once",
    )
    p.add_argument(
        "--knowledge",
        default=None,
        help="knowledge-DB JSON path: loaded at startup (corrupt or "
        "missing files degrade to profiling from scratch) and saved "
        "on clean shutdown",
    )

    p = sub.add_parser(
        "learn",
        help="closed-loop learning: per-app decision-quality report",
    )
    add_testbed(p)
    p.add_argument(
        "--report",
        action="store_true",
        help="print the per-app decision-quality table (the default "
        "action; present for explicitness in scripts)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of a table",
    )
    p.add_argument(
        "--knowledge",
        default=None,
        metavar="PATH",
        help="read observation history from a saved knowledge DB "
        "instead of running the demo campaign",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=24,
        help="demo campaign length when no --knowledge is given "
        "(default 24 learning-on decisions)",
    )
    p.add_argument(
        "--budget",
        type=float,
        default=1400.0,
        help="cluster budget for the demo campaign (default 1400 W)",
    )

    p = sub.add_parser(
        "report", help="assemble the reproduction report from benchmark artifacts"
    )
    p.add_argument(
        "--results",
        default="benchmarks/results",
        help="directory the benchmarks wrote their tables to",
    )
    return parser


def _engine(
    seed: int, testbed: str = "haswell", racks: int = 1
) -> ExecutionEngine:
    racks_arg = racks if racks and racks > 1 else None
    spec = {
        "haswell": haswell_testbed,
        "broadwell": broadwell_testbed,
        "mixed": mixed_testbed,
        "gpu": gpu_testbed,
        "mixed-gpu": mixed_gpu_testbed,
    }[testbed](racks=racks_arg)
    return ExecutionEngine(SimulatedCluster(spec), seed=seed)


def cmd_apps(_args) -> int:
    rows = [
        [a.name, a.problem_size, a.description[:48]]
        for a in all_apps()
    ]
    print(render_table(["name", "input", "description"], rows))
    return 0


def cmd_profile(args) -> int:
    engine = _engine(args.seed)
    profile = SmartProfiler(engine).profile(get_app(args.app))
    rows = [
        ["class", profile.scalability_class.value],
        ["Perf_half / Perf_all", f"{profile.ratio:.3f}"],
        ["affinity", profile.affinity.value],
        ["memory intensive", str(profile.memory_intensive)],
        ["all-core PKG / DRAM (W)",
         f"{profile.all_run.pkg_w:.1f} / {profile.all_run.dram_w:.1f}"],
        ["low-freq PKG / DRAM (W)",
         f"{profile.all_run.pkg_lo_w:.1f} / {profile.all_run.dram_lo_w:.1f}"],
        ["measured bandwidth (GB/s)",
         f"{profile.all_run.events.memory_bandwidth / 1e9:.1f}"],
    ]
    print(render_table(["metric", "value"], rows, title=f"Profile: {args.app}"))
    return 0


def cmd_classify(args) -> int:
    engine = _engine(args.seed)
    profile = SmartProfiler(engine).profile(get_app(args.app))
    print(f"{args.app}: {profile.scalability_class.value} (ratio {profile.ratio:.3f})")
    return 0


def _scheduler(engine: ExecutionEngine) -> ClipScheduler:
    print("Training CLIP's inflection predictor...", file=sys.stderr)
    return ClipScheduler(engine, inflection=build_trained_inflection(engine))


def cmd_schedule(args) -> int:
    engine = _engine(args.seed, args.testbed, args.racks)
    app = get_app(args.app)
    clip = _scheduler(engine)
    if args.json:
        decision, trace = clip.schedule_traced(
            app, args.budget, allocation_mode=args.mode
        )
        payload = {"decision": decision.to_dict(), "trace": trace.to_dict()}
        rack_budgets = decision.allocation.rack_budgets_w
        if rack_budgets is not None:
            spec = engine.cluster.spec
            records, start = [], 0
            for name, size in zip(spec.rack_names, spec.rack_sizes):
                take = min(size, decision.n_nodes - start)
                if take <= 0:
                    break
                records.append(
                    {
                        "name": name,
                        "n_nodes": take,
                        "budget_w": rack_budgets[len(records)],
                    }
                )
                start += size
            payload["racks"] = records
        print(json.dumps(payload, indent=2))
        return 0
    decision = clip.schedule(app, args.budget, allocation_mode=args.mode)
    print(render_script(app, decision))
    print(
        f"predicted performance: {decision.predicted_perf:.3f} it/s "
        f"({decision.scalability_class.value}, NP={decision.inflection_point})"
    )
    return 0


def cmd_run(args) -> int:
    engine = _engine(args.seed, args.testbed, args.racks)
    app = get_app(args.app)
    clip = _scheduler(engine)
    decision, result = clip.run(app, args.budget, allocation_mode=args.mode)
    print(render_script(app, decision))
    print(result.summary())
    return 0


def cmd_compare(args) -> int:
    engine = _engine(args.seed, args.testbed, args.racks)
    apps = (
        [get_app(n) for n in args.apps]
        if args.apps
        else list(all_apps()[:10])
    )
    print("Profiling and training (one-time)...", file=sys.stderr)
    comp = compare_methods(
        engine, apps, [args.budget], make_schedulers(engine), iterations=3
    )
    methods = ["All-In", "Lower-Limit", "Coordinated", "CLIP"]
    rows = [
        [a.name] + [comp.cell(m, a.name, args.budget).relative for m in methods]
        for a in apps
    ]
    print(
        render_table(
            ["Benchmark"] + methods,
            rows,
            title=f"Relative performance at {args.budget:.0f} W",
        )
    )
    return 0


#: The demo queue: six jobs, two of them repeat submissions.
FAULT_DEMO_APPS = ("comd", "sp-mz.C", "stream", "bt-mz.C", "comd", "stream")


def demo_fault_events(makespan_s: float, budget_w: float):
    """The canonical fault scenario, anchored to a clean-drain makespan.

    Node 2 fails early, the budget drops to 70% mid-drain, the node
    comes back, and the budget is restored — one failure, one recovery,
    two budget swings, all guaranteed to fire while jobs remain.
    """
    from repro.sim.faults import FaultEvent

    return [
        FaultEvent(at_s=0.15 * makespan_s, action="fail_node", node_id=2),
        FaultEvent(
            at_s=0.30 * makespan_s, action="set_budget",
            budget_w=0.7 * budget_w,
        ),
        FaultEvent(at_s=0.55 * makespan_s, action="recover_node", node_id=2),
        FaultEvent(
            at_s=0.70 * makespan_s, action="set_budget", budget_w=budget_w
        ),
    ]


def demo_chaos_events(makespan_s: float):
    """Enforcement faults layered on top of :func:`demo_fault_events`.

    Caps start silently drifting at t=0, cap writes begin dropping a
    quarter of the way in, and the sensors turn noisy then stale — the
    full lying-hardware gauntlet for the enforcement guard.
    """
    from repro.sim.faults import FaultEvent

    return [
        FaultEvent(at_s=0.0, action="cap_drift", factor=0.15, seed=11),
        FaultEvent(
            at_s=0.25 * makespan_s, action="cap_write_fail",
            factor=0.3, seed=12,
        ),
        FaultEvent(
            at_s=0.40 * makespan_s, action="sensor_noise",
            factor=0.05, seed=13,
        ),
        FaultEvent(
            at_s=0.60 * makespan_s, action="sensor_stale",
            factor=3, seed=14,
        ),
    ]


def _actuation_totals(cluster) -> dict:
    """Sum every node's RAPL actuation counters."""
    totals: dict = {}
    for node_id in range(cluster.n_nodes):
        for key, value in cluster.node(node_id).rapl.actuation_stats.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def cmd_faults(args) -> int:
    from repro.core.jobqueue import PowerBoundedJobQueue
    from repro.core.watchdog import EnforcementGuard
    from repro.sim.faults import FaultInjector

    engine = _engine(args.seed, args.testbed, args.racks)
    clip = _scheduler(engine)
    queue = PowerBoundedJobQueue(clip)
    apps = [get_app(n) for n in FAULT_DEMO_APPS]
    if args.policy == "coscheduled":
        # co-scheduled batches are atomic — faults apply at batch
        # boundaries — so double the queue to span several batches
        apps = apps * 2

    print("Calibrating: clean drain to anchor the fault timeline...",
          file=sys.stderr)
    clean = queue.drain(
        apps, args.budget, policy=args.policy, iterations=args.iterations
    )
    events = demo_fault_events(clean.makespan_s, args.budget)
    guard = None
    if args.chaos:
        events = sorted(
            events + demo_chaos_events(clean.makespan_s),
            key=lambda e: e.at_s,
        )
        guard = EnforcementGuard()
    injector = FaultInjector(engine.cluster, events, budget_w=args.budget)
    clip.monitor.reset()
    report = queue.drain(
        apps,
        args.budget,
        policy=args.policy,
        iterations=args.iterations,
        faults=injector,
        guard=guard,
    )
    audit = clip.monitor.report()

    if args.json:
        payload = {
            "policy": report.policy,
            "events": [e.describe() for e in injector.fired],
            "jobs": [
                {
                    "app_name": j.app_name,
                    "started_at_s": j.started_at_s,
                    "finished_at_s": j.finished_at_s,
                    "n_nodes": j.n_nodes,
                    "n_threads": j.n_threads,
                    "batch": j.batch,
                }
                for j in report.jobs
            ],
            "makespan_s": report.makespan_s,
            "clean_makespan_s": clean.makespan_s,
            "monitor": audit,
        }
        if guard is not None:
            payload["guard"] = guard.report()
            payload["actuation"] = _actuation_totals(engine.cluster)
        print(json.dumps(payload, indent=2))
    else:
        print("Fault timeline:")
        for e in injector.fired:
            print(f"  {e.describe()}")
        rows = [
            [
                j.app_name,
                f"{j.started_at_s:.1f}",
                f"{j.finished_at_s:.1f}",
                j.n_nodes,
                j.n_threads,
                j.batch,
            ]
            for j in sorted(report.jobs, key=lambda j: j.started_at_s)
        ]
        print(
            render_table(
                ["job", "start (s)", "finish (s)", "nodes", "threads", "batch"],
                rows,
                title=f"Faulted drain ({report.policy}) at {args.budget:.0f} W",
            )
        )
        print(
            f"makespan: {report.makespan_s:.1f} s "
            f"(clean: {clean.makespan_s:.1f} s)"
        )
        print(
            f"invariant audit: {audit['n_violations']} violation(s) across "
            f"{audit['n_audits']} cap sets "
            f"({', '.join(f'{k}: {v}' for k, v in sorted(audit['audits_by_source'].items()))})"
        )
        if guard is not None:
            g = guard.report()
            act = _actuation_totals(engine.cluster)
            print(
                f"enforcement guard: {g['breaches']} breach(es) across "
                f"{g['checks']} checks, final derate {g['derate']:.3f}"
            )
            print(
                f"actuation: {act.get('writes', 0)} writes "
                f"({act.get('dropped', 0)} dropped, "
                f"{act.get('partial', 0)} partial, "
                f"{act.get('drifted', 0)} drifted), "
                f"{act.get('retries', 0)} retries"
            )
    return 1 if audit["n_violations"] else 0


def _job_state(job) -> dict:
    """JSON-ready summary of one recovered job."""
    return {
        "app_name": job.app.name,
        "budget_w": job.budget_w,
        "n_nodes": job.n_nodes,
        "n_threads": job.n_threads,
        "node_ids": list(job.node_ids),
        "remaining_iterations": job.remaining_iterations,
        "segments": len(job.segments),
        "elapsed_s": job.elapsed_s,
        "energy_j": job.energy_j,
        "parked": job.parked,
        "park_reason": job.park_reason,
        "done": job.done,
    }


def _print_jobs(runtime) -> None:
    rows = [
        [
            i,
            j.app.name,
            f"{j.budget_w:.0f}",
            j.n_nodes,
            j.n_threads,
            len(j.segments),
            j.remaining_iterations,
            "parked" if j.parked else ("done" if j.done else "running"),
        ]
        for i, j in enumerate(runtime.jobs)
    ]
    print(
        render_table(
            ["#", "app", "budget W", "nodes", "threads", "segments",
             "remaining", "state"],
            rows,
            title="Recovered runtime state",
        )
    )


def cmd_replay(args) -> int:
    import tempfile
    from pathlib import Path

    from repro.core.runtime import PowerBoundedRuntime
    from repro.errors import RuntimeCrashError
    from repro.sim.faults import FaultEvent, FaultInjector, run_scripted

    if not args.demo and args.journal is None:
        print("error: supply a journal file or use --demo", file=sys.stderr)
        return 2

    engine = _engine(args.seed, args.testbed, args.racks)
    clip = _scheduler(engine)

    if not args.demo:
        runtime = PowerBoundedRuntime.restore(
            args.journal, clip, reattach=False
        )
        audit = clip.monitor.report()
        if args.json:
            print(json.dumps({
                "journal": args.journal,
                "jobs": [_job_state(j) for j in runtime.jobs],
                "monitor": audit,
            }, indent=2))
        else:
            _print_jobs(runtime)
            print(
                f"invariant audit: {audit['n_violations']} violation(s) "
                f"across {audit['n_audits']} replayed cap sets"
            )
        return 1 if audit["n_violations"] else 0

    # --demo: journal a run, crash it, restore, verify, resume
    with tempfile.TemporaryDirectory() as tmp:
        journal_path = Path(tmp) / "runtime.journal"
        runtime = PowerBoundedRuntime(clip, journal=journal_path)
        injector = FaultInjector(
            engine.cluster,
            [
                FaultEvent(at_s=0.0, action="cap_drift", factor=0.10, seed=3),
                FaultEvent(at_s=1.0, action="crash"),
            ],
            budget_w=args.budget,
        )
        job = runtime.launch(
            get_app("comd"), args.budget, n_nodes=4,
            allow_concurrency_change=True,
        )
        crashed = False
        try:
            run_scripted(runtime, job, injector, segment_iterations=10)
        except RuntimeCrashError as exc:
            crashed = True
            print(f"crash: {exc}", file=sys.stderr)
        pre_audits = list(clip.monitor.audits)
        pre_segments = len(job.segments)

        clip.monitor.reset()
        restored = PowerBoundedRuntime.restore(journal_path, clip)
        job2 = restored.jobs[0]
        identical = (
            job2 == job and list(clip.monitor.audits) == pre_audits
        )
        if crashed and not job2.done:
            run_scripted(restored, job2, injector, segment_iterations=10)
        audit = clip.monitor.report()

        if args.json:
            print(json.dumps({
                "crashed": crashed,
                "pre_crash_segments": pre_segments,
                "bit_identical": identical,
                "job": _job_state(job2),
                "monitor": audit,
            }, indent=2))
        else:
            _print_jobs(restored)
            print(f"crashed mid-run: {crashed}")
            print(
                f"restore bit-identical "
                f"({pre_segments} journaled segment(s), "
                f"{len(pre_audits)} audit(s)): {identical}"
            )
            print(
                f"resumed to completion: {job2.done} | invariant audit: "
                f"{audit['n_violations']} violation(s) across "
                f"{audit['n_audits']} cap sets"
            )
        return 0 if identical and job2.done and not audit["n_violations"] else 1


def cmd_serve(args) -> int:
    from repro.core.knowledge import KnowledgeDB
    from repro.core.scheduler import ClipScheduler as _Clip
    from repro.serve import SchedulerService, ServeDaemon, TenantQuota

    # fail on bad quota specs before the expensive predictor training
    quotas = dict(TenantQuota.parse(spec) for spec in args.quota)
    engine = _engine(args.seed, args.testbed, args.racks)
    knowledge = None
    if args.knowledge:
        knowledge = KnowledgeDB.load_or_fresh(args.knowledge)
        if knowledge.load_error is not None:
            print(
                f"warning: {knowledge.load_error} — starting with an "
                "empty knowledge DB",
                file=sys.stderr,
            )
    print("Training CLIP's inflection predictor...", file=sys.stderr)
    clip = _Clip(
        engine,
        inflection=build_trained_inflection(engine),
        knowledge=knowledge,
    )
    service = SchedulerService(
        clip, args.budget, max_pending=args.max_pending, quotas=quotas
    )
    daemon = ServeDaemon(
        service,
        host=args.host,
        port=args.port,
        window_s=args.window_ms / 1e3,
        max_burst=args.max_burst,
    )
    print(
        f"clip-sched serve: budget {args.budget:.0f} W, testbed "
        f"{args.testbed}, window {args.window_ms:g} ms — listening on "
        f"http://{args.host}:{args.port or '<ephemeral>'} "
        "(Ctrl-C or SIGTERM stops)",
        file=sys.stderr,
    )
    daemon.run()
    stats = service.stats()
    if args.knowledge:
        clip.knowledge.save(args.knowledge)
        print(f"knowledge DB saved to {args.knowledge}", file=sys.stderr)
    print(
        f"served {stats['decided']} decisions in {stats['bursts']} bursts "
        f"({stats['rejected']} rejected, "
        f"{stats['audit_violations']} audit violations)",
        file=sys.stderr,
    )
    return 0 if stats["audit_violations"] == 0 else 1


def cmd_learn(args) -> int:
    """Per-app decision-quality report from the learning layer.

    With ``--knowledge`` the report reads a saved database's
    observation history; without it a short learning-on campaign runs
    on the simulated testbed first (scheduler decisions executed and
    fed back through the outcome choke point), so the command
    demonstrates the whole closed loop out of the box.
    """
    from repro.core.knowledge import KnowledgeDB
    from repro.core.learning import LearningConfig

    stats = None
    if args.knowledge:
        kb = KnowledgeDB.load(args.knowledge)
        source = args.knowledge
    else:
        engine = _engine(args.seed, args.testbed, args.racks)
        print(
            f"Running a {args.jobs}-decision learning-on campaign...",
            file=sys.stderr,
        )
        clip = ClipScheduler(
            engine,
            inflection=build_trained_inflection(engine),
            learning=LearningConfig(enabled=True),
        )
        # rotate a small app set so entries accumulate enough
        # observations for the refit policy to act within the demo
        apps = all_apps()[:4]
        for i in range(args.jobs):
            clip.run(apps[i % len(apps)], args.budget, iterations=2)
        kb = clip.knowledge
        stats = clip.pipeline.learning_stats()
        source = "demo campaign"

    rows = []
    entries = []
    for key in kb.keys():
        entry = kb.get(*key)
        for cell in entry.quality_cells():
            rows.append(
                [
                    entry.profile.app_name,
                    entry.profile.problem_size,
                    f"{cell.band_w:.0f}",
                    str(cell.n),
                    str(entry.model_version),
                    f"{cell.mean_abs_time_error * 100:.1f}%",
                    f"{cell.mean_abs_power_error * 100:.1f}%",
                    f"{cell.score:.3f}",
                ]
            )
            entries.append(cell.to_dict())
    if args.json:
        payload = {"source": source, "cells": entries}
        if stats is not None:
            payload["learning"] = stats
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not rows:
        print(f"no observations recorded in {source}")
        return 0
    print(
        render_table(
            [
                "app",
                "input",
                "band (W)",
                "obs",
                "model v",
                "time err",
                "power err",
                "score",
            ],
            rows,
            title=f"Decision quality ({source})",
        )
    )
    if stats is not None:
        print(
            f"outcomes={stats['outcomes']} refits={stats['refits']} "
            f"explorations={stats['explorations']} "
            f"inflection_refits={stats['inflection_refits']}"
        )
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import assemble_report

    print(assemble_report(args.results))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "apps": cmd_apps,
        "profile": cmd_profile,
        "classify": cmd_classify,
        "schedule": cmd_schedule,
        "run": cmd_run,
        "compare": cmd_compare,
        "faults": cmd_faults,
        "replay": cmd_replay,
        "serve": cmd_serve,
        "learn": cmd_learn,
        "report": cmd_report,
    }[args.command]
    try:
        return handler(args)
    except ClipError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
