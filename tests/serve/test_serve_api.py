"""API contract tests for the ``clip-sched serve`` daemon.

One daemon (module-scoped: the scheduler behind it trains the
inflection predictor once) serves every test over real sockets via
:class:`~repro.serve.client.ServeClient`: submit/query/update-budget
happy paths, quota and admission rejections, JSON round-trips of
decisions over the wire, the telemetry stream, and error codecs.  A
separate daemon instance covers the start → burst → clean-shutdown
smoke path the CI workflow exercises.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.scheduler import ClipScheduler, SchedulingDecision
from repro.errors import ServeError
from repro.serve import SchedulerService, ServeClient, ServeDaemon, TenantQuota
from repro.serve.service import Submission
from repro.workloads.apps import get_app

BUDGET_W = 1400.0
MAX_PENDING = 64


@pytest.fixture(scope="module")
def clip(trained_inflection):
    """One scheduler shared by the daemons under test."""
    from repro.hw.cluster import SimulatedCluster
    from repro.sim.engine import ExecutionEngine

    engine = ExecutionEngine(SimulatedCluster.testbed(), seed=42)
    return ClipScheduler(engine, inflection=trained_inflection)


@pytest.fixture(scope="module")
def daemon(clip):
    """A running daemon on an ephemeral port."""
    service = SchedulerService(
        clip,
        BUDGET_W,
        max_pending=MAX_PENDING,
        quotas={
            "small": TenantQuota(budget_w=900.0),
            "narrow": TenantQuota(max_pending=2),
        },
    )
    daemon = ServeDaemon(service, port=0).start_in_thread()
    yield daemon
    daemon.shutdown()


@pytest.fixture()
def client(daemon):
    with ServeClient("127.0.0.1", daemon.port) as client:
        yield client


class TestSubmitAndQuery:
    def test_health_and_stats(self, client):
        assert client.health() == {"ok": True}
        stats = client.stats()
        assert stats["budget_w"] == BUDGET_W
        assert stats["audit_violations"] == 0

    def test_single_submission_round_trips(self, client):
        (job,) = client.submit("comd")
        assert job["status"] == "done"
        assert job["tenant"] == "default"
        assert job["latency_s"] >= 0.0
        decision = SchedulingDecision.from_dict(job["decision"])
        assert decision.app_name == "comd"
        assert decision.cluster_budget_w == BUDGET_W
        assert decision.total_capped_w <= BUDGET_W + 1e-6
        # the wire form is exactly the decision's own codec
        assert decision.to_dict() == job["decision"]

    def test_burst_submission_with_duplicates(self, client):
        jobs = client.submit(["comd", "minimd", "comd", "sp-mz.C"])
        assert [j["app"] for j in jobs] == ["comd", "minimd", "comd", "sp-mz.C"]
        assert all(j["status"] == "done" for j in jobs)
        first = SchedulingDecision.from_dict(jobs[0]["decision"])
        dup = SchedulingDecision.from_dict(jobs[2]["decision"])
        assert first == dup  # one pipeline pass, equal plans

    def test_query_matches_submission(self, client):
        (job,) = client.submit("tealeaf")
        fetched = client.job(job["job_id"])
        assert fetched == job

    def test_async_submission_polls_to_done(self, client):
        (job,) = client.submit("comd", wait=False)
        assert job["status"] in ("pending", "done")
        deadline = time.time() + 30.0
        while job["status"] == "pending":
            assert time.time() < deadline, "job never decided"
            time.sleep(0.01)
            job = client.job(job["job_id"])
        assert job["status"] == "done"
        assert job["decision"] is not None

    def test_per_job_budget_override(self, client):
        jobs = client.submit([{"app": "comd", "budget_w": 1000.0}, "comd"])
        budgets = [j["decision"]["cluster_budget_w"] for j in jobs]
        assert budgets == [1000.0, BUDGET_W]


class TestBudgetAndQuotas:
    def test_update_budget_applies_to_new_submissions(self, client):
        assert client.budget() == BUDGET_W
        try:
            assert client.update_budget(1100.0) == 1100.0
            (job,) = client.submit("comd")
            assert job["decision"]["cluster_budget_w"] == 1100.0
        finally:
            client.update_budget(BUDGET_W)

    def test_bad_budget_rejected(self, client):
        status, data = client.request("POST", "/v1/budget", {"budget_w": -5})
        assert status == 400
        assert "error" in data
        assert client.budget() == BUDGET_W  # unchanged

    def test_tenant_budget_quota_caps_decisions(self, client):
        (job,) = client.submit("comd", tenant="small")
        assert job["decision"]["cluster_budget_w"] == 900.0
        # quota clamps, it does not raise
        (job,) = client.submit([{"app": "comd", "budget_w": 1200.0}],
                               tenant="small")
        assert job["decision"]["cluster_budget_w"] == 900.0

    def test_global_admission_rejects_oversized_burst(self, client):
        status, data = client.request(
            "POST", "/v1/jobs", {"jobs": ["comd"] * (MAX_PENDING + 1)}
        )
        assert status == 429
        assert data["rejected"] is True
        assert "max_pending" in data["error"]

    def test_tenant_admission_rejects_over_quota(self, client):
        status, data = client.request(
            "POST",
            "/v1/jobs",
            {"jobs": ["comd"] * 3, "tenant": "narrow"},
        )
        assert status == 429
        assert data["tenant"] == "narrow"
        # a burst within quota still lands
        jobs = client.submit(["comd", "minimd"], tenant="narrow")
        assert all(j["status"] == "done" for j in jobs)

    def test_rejection_is_all_or_nothing(self, client):
        before = client.stats()
        status, _ = client.request(
            "POST", "/v1/jobs", {"jobs": ["comd"] * (MAX_PENDING + 1)}
        )
        assert status == 429
        after = client.stats()
        assert after["decided"] == before["decided"]
        assert after["rejected"] == before["rejected"] + MAX_PENDING + 1


class TestErrorCodec:
    def test_unknown_app_is_400(self, client):
        status, data = client.request(
            "POST", "/v1/jobs", {"jobs": ["no-such-app"]}
        )
        assert status == 400
        assert "no-such-app" in data["error"]

    def test_unknown_job_is_404(self, client):
        status, data = client.request("GET", "/v1/jobs/j-999999")
        assert status == 404
        assert "unknown job" in data["error"]

    def test_unknown_path_is_404(self, client):
        status, _ = client.request("GET", "/v1/nope")
        assert status == 404

    def test_wrong_method_is_405(self, client):
        status, _ = client.request("GET", "/v1/jobs")
        assert status == 405
        status, _ = client.request("POST", "/v1/stats", {})
        assert status == 405

    def test_bad_json_is_400(self, client):
        status, data = client.request("POST", "/v1/jobs", {"nope": 1})
        assert status == 400
        # raw garbage bodies too
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", client._port, timeout=10)
        try:
            conn.request(
                "POST",
                "/v1/jobs",
                body=b"not json",
                headers={"Content-Type": "application/json"},
            )
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_client_raises_serve_error(self, client):
        with pytest.raises(ServeError) as err:
            client.submit("no-such-app")
        assert err.value.status == 400


class TestOutcomeReporting:
    def test_outcome_feeds_the_learning_layer(self, client, clip):
        (job,) = client.submit("comd")
        before = client.stats()
        predicted = job["decision"]["allocation"]["predicted_cluster_perf"]
        measured = predicted * 0.9
        record = client.record_outcome(
            job["job_id"], performance=measured, measured_power_w=1200.0
        )
        assert record["outcome"]["performance"] == pytest.approx(measured)
        assert record["outcome"]["recorded"] is True
        # the observation landed in the knowledge entry...
        app = get_app("comd")
        entry = clip.knowledge.get(app.name, app.problem_size)
        obs = entry.observations[-1]
        assert obs.source == "serve"
        assert obs.measured_time_s == pytest.approx(1.0 / measured)
        # ...and the daemon's telemetry shows it
        after = client.stats()
        assert after["outcomes"] == before["outcomes"] + 1
        assert (
            after["learning"]["outcomes"]
            == before["learning"]["outcomes"] + 1
        )
        assert after["learning"]["enabled"] is False

    def test_outcome_accepts_measured_time(self, client):
        (job,) = client.submit("minimd")
        record = client.record_outcome(job["job_id"], measured_time_s=2.0)
        assert record["outcome"]["performance"] == pytest.approx(0.5)
        fetched = client.job(job["job_id"])
        assert fetched["outcome"] == record["outcome"]

    def test_unknown_job_outcome_is_404(self, client):
        status, data = client.request(
            "POST", "/v1/jobs/j-999999/outcome", {"performance": 1.0}
        )
        assert status == 404
        assert "unknown" in data["error"] or "no such" in data["error"]

    def test_double_report_is_409(self, client):
        (job,) = client.submit("comd")
        client.record_outcome(job["job_id"], performance=1.0)
        with pytest.raises(ServeError) as err:
            client.record_outcome(job["job_id"], performance=1.0)
        assert err.value.status == 409

    def test_bad_outcome_payload_is_400(self, client):
        (job,) = client.submit("comd")
        for payload in ({}, {"performance": -1.0}, {"measured_time_s": 0}):
            status, _ = client.request(
                "POST", f"/v1/jobs/{job['job_id']}/outcome", payload
            )
            assert status == 400, payload

    def test_outcome_requires_post(self, client):
        (job,) = client.submit("comd")
        status, _ = client.request(
            "GET", f"/v1/jobs/{job['job_id']}/outcome"
        )
        assert status == 405


class TestTelemetry:
    def test_stream_reports_decisions(self, client):
        client.submit(["comd", "minimd"])
        events = client.telemetry(2, interval=0.05)
        assert len(events) == 2
        for event in events:
            assert event["decided"] >= 2
            assert event["audit_violations"] == 0
            assert "decisions_per_s" in event
            assert "pending" in event


class TestDaemonLifecycle:
    def test_smoke_start_burst_clean_shutdown(self, clip):
        """The CI smoke path: fresh daemon, one burst, clean stop."""
        service = SchedulerService(clip, BUDGET_W)
        daemon = ServeDaemon(service, port=0).start_in_thread()
        try:
            with ServeClient("127.0.0.1", daemon.port) as client:
                jobs = client.submit(["comd", "minimd", "comd", "tealeaf"])
                assert [j["status"] for j in jobs] == ["done"] * 4
                stats = client.stats()
                assert stats["decided"] >= 4
                assert stats["audit_violations"] == 0
        finally:
            daemon.shutdown()
        assert daemon._thread is None  # joined
        clip.monitor.assert_clean()

    def test_shutdown_fails_undecided_queue(self, clip):
        """Submissions still queued at shutdown fail loudly, they do
        not hang their waiters."""
        service = SchedulerService(clip, BUDGET_W)
        daemon = ServeDaemon(service, port=0).start_in_thread()
        # bypass HTTP: enqueue directly after stopping the coalescer so
        # the submission can never be decided
        subs = service.submit(["comd"])
        daemon.shutdown()
        service.fail_pending(subs, "service shutting down")
        assert subs[0].record.status == "failed"
        with pytest.raises(ServeError):
            subs[0].future.result(timeout=1)

    def test_two_daemons_share_one_scheduler(self, daemon, clip):
        """Two daemons (two coalescers, two decision threads) safely
        share the scheduler's caches — the serve-layer version of the
        concurrency suite."""
        service2 = SchedulerService(clip, BUDGET_W)
        daemon2 = ServeDaemon(service2, port=0).start_in_thread()
        try:
            results: list[list[dict]] = []
            errors: list[Exception] = []

            def hit(port):
                try:
                    with ServeClient("127.0.0.1", port) as c:
                        results.append(c.submit(["comd", "minimd"] * 4))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=hit, args=(port,))
                for port in (daemon.port, daemon2.port)
                for _ in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            assert not errors
            assert len(results) == 4
            reference = results[0][0]["decision"]
            for jobs in results:
                for job in jobs:
                    assert job["status"] == "done"
                    if job["app"] == "comd":
                        assert job["decision"] == reference
            clip.monitor.assert_clean()
        finally:
            daemon2.shutdown()


class TestSubmissionValidation:
    def test_empty_submission_rejected(self, client):
        status, _ = client.request("POST", "/v1/jobs", {"jobs": []})
        assert status == 400

    def test_bad_job_spec_rejected(self, client):
        for jobs in ([42], [{"budget_w": 100.0}], [{"app": 7}]):
            status, _ = client.request("POST", "/v1/jobs", {"jobs": jobs})
            assert status == 400, jobs

    def test_direct_service_submission_type(self, clip):
        """The transport-free service hands back live submissions."""
        service = SchedulerService(clip, BUDGET_W)
        subs = service.submit(["comd"])
        assert isinstance(subs[0], Submission)
        assert subs[0].record.status == "pending"
        assert subs[0].app is get_app("comd")
        service.decide_burst(subs)
        assert subs[0].record.status == "done"
        assert subs[0].future.result(timeout=1).app_name == "comd"
