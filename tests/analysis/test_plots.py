"""Tests for the ASCII chart helpers."""

import pytest

from repro.analysis.plots import render_bars, render_grouped_bars, render_series


class TestBars:
    def test_longest_bar_for_max(self):
        out = render_bars(["a", "b"], [1.0, 2.0], width=10)
        a_line, b_line = out.splitlines()
        assert b_line.count("#") == 10
        assert a_line.count("#") == 5

    def test_title_first(self):
        out = render_bars(["a"], [1.0], title="T")
        assert out.splitlines()[0] == "T"

    def test_markers_drawn_and_legended(self):
        out = render_bars(
            ["x"], [1.0], width=20, markers={0.5: "threshold"}
        )
        assert "|" in out
        assert "threshold" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])

    def test_empty(self):
        assert render_bars([], [], title="nothing") == "nothing"

    def test_values_printed(self):
        out = render_bars(["a"], [0.123456], fmt="{:.2f}")
        assert "0.12" in out


class TestGroupedBars:
    def test_groups_and_methods_present(self):
        out = render_grouped_bars(
            ["app1", "app2"],
            {"CLIP": [1.0, 2.0], "All-In": [0.5, 1.0]},
        )
        assert "app1:" in out and "app2:" in out
        assert "CLIP" in out and "All-In" in out

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_grouped_bars(["g"], {"m": [1.0, 2.0]})

    def test_scaling_shared_across_series(self):
        out = render_grouped_bars(
            ["g"], {"big": [2.0], "small": [1.0]}, width=10
        )
        lines = [l for l in out.splitlines() if "#" in l]
        big = next(l for l in lines if "big" in l)
        small = next(l for l in lines if "small" in l)
        assert big.count("#") == 2 * small.count("#")


class TestSeries:
    def test_contains_glyphs_and_legend(self):
        out = render_series(
            [1, 2, 3], {"linear": [1, 2, 3], "flat": [2, 2, 2]}
        )
        assert "o=linear" in out
        assert "x=flat" in out
        assert "o" in out and "x" in out

    def test_axis_bounds_printed(self):
        out = render_series([0, 10], {"y": [5.0, 15.0]})
        assert "15.000" in out
        assert "5.000" in out

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_series([1, 2], {"y": [1.0]})

    def test_empty(self):
        assert render_series([], {}, title="t") == "t"

    def test_monotone_series_slopes_up(self):
        out = render_series([1, 2, 3, 4], {"up": [1, 2, 3, 4]}, height=4, width=8)
        rows = [l for l in out.splitlines() if l.startswith(" " * 11 + "|")]
        # the glyph in the top row must be to the right of the bottom row's
        top_col = rows[0].index("o")
        bottom_col = rows[-1].index("o")
        assert top_col > bottom_col
