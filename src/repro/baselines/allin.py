"""The All-In baseline (§V-C).

"This utilizes all supplied nodes.  It allocates 30 watts to memory and
the remaining power to CPU on each node ... All of the cores
participate in application execution."  The fixed 30 W memory grant
"meets most applications' memory power requirement" — the baseline's
only concession to memory power.

All-In is application-oblivious: no profiling, no concurrency
throttling, no node shedding.  Under generous budgets it is a strong
baseline (all the parallelism, adequate memory power); under tight
budgets each node's CPU share collapses and, for parabolic
applications, the all-core concurrency actively hurts.
"""

from __future__ import annotations

from repro.baselines.base import PowerBoundedScheduler
from repro.errors import InfeasibleBudgetError
from repro.sim.engine import ExecutionConfig
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["AllInScheduler", "ALLIN_MEM_W"]

#: Fixed per-node DRAM grant of the baseline.
ALLIN_MEM_W = 30.0


class AllInScheduler(PowerBoundedScheduler):
    """All nodes, all cores, 30 W DRAM, remainder to the CPUs."""

    name = "All-In"

    def plan(
        self, app: WorkloadCharacteristics, cluster_budget_w: float
    ) -> ExecutionConfig:
        """All nodes, all cores; 30 W DRAM, the rest of each share to PKG."""
        cluster = self.engine.cluster
        n_nodes = cluster.n_nodes
        node_share = cluster_budget_w / n_nodes
        pkg = node_share - ALLIN_MEM_W
        if pkg <= 0:
            raise InfeasibleBudgetError(
                f"All-In: node share {node_share:.1f} W cannot cover the "
                f"fixed {ALLIN_MEM_W:.0f} W memory grant"
            )
        return ExecutionConfig(
            n_nodes=n_nodes,
            # uniform per-rank thread count: on a mixed cluster only the
            # smallest class's core count fits every participating node
            n_threads=min(s.n_cores for s in cluster.spec.node_specs),
            pkg_cap_w=pkg,
            dram_cap_w=ALLIN_MEM_W,
        )
