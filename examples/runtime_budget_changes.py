#!/usr/bin/env python3
"""Runtime re-coordination under a changing budget (§VII future work).

A production BT-MZ job is launched with a *fixed* 8-node decomposition.
Mid-run the machine room takes power away (a higher-priority job
arrives), then gives it back.  The runtime re-splits per-node budgets
and CPU/DRAM caps at every change — and, because the job allows it,
throttles concurrency when the budget dips below the all-core floor.

Halfway through, node 5 degrades (thermal event); after recalibration
the runtime shifts extra power to it so the bulk-synchronous steps stay
balanced.

Run:  python examples/runtime_budget_changes.py
"""

from repro import quickstart_scheduler
from repro.analysis.plots import render_bars
from repro.analysis.tables import render_table
from repro.core.runtime import PowerBoundedRuntime
from repro.workloads import get_app


def main() -> None:
    print("Building testbed + training CLIP...")
    clip = quickstart_scheduler()
    runtime = PowerBoundedRuntime(clip)
    app = get_app("bt-mz.C")

    job = runtime.launch(
        app, 1800.0, n_nodes=8, allow_concurrency_change=True
    )
    print(
        f"\nlaunched {app.name}: 8 nodes (fixed), {job.n_threads} threads, "
        f"{job.budget_w:.0f} W"
    )

    schedule = [
        ("steady state", 1800.0, 40),
        ("power emergency", 900.0, 40),
        ("partial restore", 1300.0, 40),
    ]
    for label, budget, iters in schedule:
        if budget != job.budget_w:
            runtime.update_budget(job, budget)
        seg = runtime.advance(job, iters)
        print(
            f"  [{label:16s}] {budget:6.0f} W -> {seg.n_threads:2d} threads, "
            f"{seg.performance:.3f} it/s"
        )

    print("\nnode 5 degrades (thermal event); recalibrating...")
    clip._engine.cluster.degrade_node(5, 1.2)
    runtime.recalibrate()
    runtime.update_budget(job, 1300.0)  # re-coordinate with fresh factors
    seg = runtime.advance(job, 40)
    print(
        f"  [post-recalibration] 1300 W -> {seg.n_threads:2d} threads, "
        f"{seg.performance:.3f} it/s"
    )
    caps = [pkg + dram for pkg, dram in job.per_node_caps]
    print()
    print(
        render_bars(
            [f"node {i}" for i in range(8)],
            caps,
            width=40,
            fmt="{:.0f} W",
            title="Per-node budgets after recalibration (node 5 compensated)",
        )
    )

    runtime.run_to_completion(job)
    print()
    print(
        render_table(
            ["segment", "budget (W)", "threads", "it/s"],
            [
                [i, s.budget_w, s.n_threads, s.performance]
                for i, s in enumerate(job.segments)
            ],
            title="Segment history",
        )
    )
    print(
        f"\njob finished: {job.mean_performance:.3f} it/s average, "
        f"{job.energy_j / 1e6:.2f} MJ total"
    )


if __name__ == "__main__":
    main()
