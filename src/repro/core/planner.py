"""Budget planning — the inverse of power-bounded scheduling.

The paper answers "given watts, how fast?"; operators just as often ask
the inverse: *"how many watts must I reserve for this job to hit a
target?"* — when negotiating a demand-response window, or deciding
whether a deadline is affordable.  Because CLIP's predicted performance
is monotone in the budget (more watts never predict slower — checked by
tests), the inverse is a bisection over the scheduler's own
predictions, so planning costs milliseconds and no extra profiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scheduler import ClipScheduler, SchedulingDecision
from repro.errors import InfeasibleBudgetError, SchedulingError
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["BudgetPlan", "BudgetPlanner"]


@dataclass(frozen=True)
class BudgetPlan:
    """Outcome of a planning query."""

    app_name: str
    target_perf: float
    budget_w: float
    decision: SchedulingDecision

    @property
    def predicted_perf(self) -> float:
        """Predicted throughput at the planned budget."""
        return self.decision.predicted_perf

    @property
    def headroom(self) -> float:
        """Fraction by which the prediction exceeds the target."""
        return self.predicted_perf / self.target_perf - 1.0


class BudgetPlanner:
    """Finds the smallest cluster budget meeting a performance target."""

    def __init__(self, scheduler: ClipScheduler, tolerance_w: float = 10.0):
        if tolerance_w <= 0:
            raise SchedulingError("tolerance must be > 0")
        self._scheduler = scheduler
        self._tol = tolerance_w

    def _predict(self, app: WorkloadCharacteristics, budget: float):
        try:
            decision = self._scheduler.schedule(app, budget)
        except InfeasibleBudgetError:
            return None
        return decision

    def max_useful_budget_w(self, app: WorkloadCharacteristics) -> float:
        """Budget beyond which predictions stop improving.

        Every node at the application's acceptable ceiling — the
        saturation point of the whole curve.  On a heterogeneous
        cluster each slot contributes its own class's ceiling.
        """
        pipeline = self._scheduler.pipeline
        rec = pipeline.bundle_for(app).recommender
        n = rec.unbounded_concurrency()
        spec = self._scheduler.engine.cluster.spec
        if spec.is_homogeneous:
            hi = rec.power_model.power_range(n).node_hi_w
            return hi * self._scheduler.engine.cluster.n_nodes
        entry = pipeline.ensure_knowledge(app)
        by_spec = {
            s: pipeline.class_bundle(entry, s).power_model.power_range(n).node_hi_w
            for s in dict.fromkeys(spec.node_specs)
        }
        return float(sum(by_spec[s] for s in spec.node_specs))

    def plan(
        self, app: WorkloadCharacteristics, target_perf: float
    ) -> BudgetPlan:
        """Smallest budget whose *predicted* throughput meets the target.

        CLIP's cluster prediction is deliberately the paper's
        optimistic one (per-node synchronization does not strong-scale
        but the allocator's estimate assumes it does), so for
        sync-heavy applications the planned budget may undershoot; use
        :meth:`plan_validated` when the answer must hold on the metal.

        Raises :class:`InfeasibleBudgetError` when even the saturated
        cluster cannot reach the target (the honest answer an operator
        needs before promising a deadline).
        """
        if target_perf <= 0:
            raise SchedulingError("target performance must be > 0")
        hi = self.max_useful_budget_w(app)
        top = self._predict(app, hi)
        if top is None or top.predicted_perf < target_perf:
            reached = 0.0 if top is None else top.predicted_perf
            raise InfeasibleBudgetError(
                f"target {target_perf:.3f} it/s unreachable: the saturated "
                f"cluster predicts {reached:.3f} it/s"
            )
        # find a feasible lower bracket
        lo = hi / 16.0
        while self._feasible_and_meets(app, lo, target_perf) is None and lo < hi:
            lo *= 1.5
        lo_ok = self._feasible_and_meets(app, lo, target_perf)
        if lo_ok is not None and lo_ok[0]:
            # even the smallest probed budget meets the target; bisect
            # between infeasibility and lo for completeness
            pass
        # bisection: invariant — hi meets the target, lo may not
        best = (hi, top)
        while hi - lo > self._tol:
            mid = (lo + hi) / 2.0
            probe = self._feasible_and_meets(app, mid, target_perf)
            if probe is not None and probe[0]:
                hi = mid
                best = (mid, probe[1])
            else:
                lo = mid
        return BudgetPlan(
            app_name=app.name,
            target_perf=target_perf,
            budget_w=best[0],
            decision=best[1],
        )

    def _feasible_and_meets(self, app, budget, target):
        decision = self._predict(app, budget)
        if decision is None:
            return None
        return (decision.predicted_perf >= target, decision)

    def plan_validated(
        self,
        app: WorkloadCharacteristics,
        target_perf: float,
        probe_iterations: int = 3,
        max_rounds: int = 5,
    ) -> BudgetPlan:
        """Like :meth:`plan`, but validated by short probe executions.

        After the prediction-driven bisection, runs a few iterations at
        the planned budget; while the *measured* throughput misses the
        target, the target handed to the predictor is inflated by the
        observed miss ratio and the bisection repeats — a calibration
        loop that converges in a couple of rounds because the miss
        ratio is nearly budget-independent.
        """
        engine = self._scheduler.engine
        effective_target = target_perf
        plan = self.plan(app, effective_target)
        for _ in range(max_rounds):
            result = engine.run(
                app, plan.decision.to_execution_config(iterations=probe_iterations)
            )
            if result.performance >= target_perf:
                return BudgetPlan(
                    app_name=app.name,
                    target_perf=target_perf,
                    budget_w=plan.budget_w,
                    decision=plan.decision,
                )
            effective_target *= target_perf / result.performance * 1.02
            plan = self.plan(app, effective_target)
        raise InfeasibleBudgetError(
            f"validation did not converge to {target_perf:.3f} it/s "
            f"within {max_rounds} rounds"
        )
