"""Scheduler overhead — the paper claims "a solution with a low overhead".

Two costs matter:

* **profiling** — the 2-3 sample executions run only a few iterations;
  their simulated wall time must be a tiny fraction of a production
  run ("smart profiling with a few iterations incurs minimal
  overhead", §IV-B.1);
* **decision latency** — with the knowledge base warm, scheduling a
  job is pure model arithmetic and must be far under a second.
"""

import time

from repro.analysis.tables import render_table
from repro.core.knowledge import KnowledgeDB
from repro.core.profile import DEFAULT_PROFILE_ITERATIONS, SmartProfiler
from repro.core.scheduler import ClipScheduler
from repro.sim.engine import ExecutionConfig
from repro.workloads.apps import get_app
from conftest import run_once


def test_profiling_overhead(benchmark, engine, report):
    """Simulated profiling time vs a production run."""

    def measure():
        rows = []
        for name in ("comd", "sp-mz.C", "tealeaf"):
            app = get_app(name)
            prod = engine.run(
                app, ExecutionConfig(n_nodes=8, n_threads=24)
            ).total_time_s
            # profiling: the samples run DEFAULT_PROFILE_ITERATIONS
            # iterations each on one node
            profile_time = 0.0
            for n in (24, 12, 14):
                r = engine.run(
                    app,
                    ExecutionConfig(
                        n_nodes=1, n_threads=n,
                        iterations=DEFAULT_PROFILE_ITERATIONS,
                    ),
                )
                profile_time += r.total_time_s
            rows.append([name, profile_time, prod, profile_time / prod])
        return rows

    rows = run_once(benchmark, measure)
    report(
        "overhead_profiling",
        render_table(
            ["Benchmark", "profiling (sim s)", "production run (sim s)", "fraction"],
            rows,
            title="Overhead — simulated profiling cost vs production run",
        ),
    )
    # The paper's claim targets production codes running "hundreds or
    # thousands of iterations"; profiling costs a fixed ~15 iterations
    # once (then lives in the knowledge DB), so the fraction shrinks
    # with run length.
    by_name = {r[0]: r for r in rows}
    for name in ("sp-mz.C", "tealeaf"):
        assert by_name[name][3] < 0.25, (name, by_name[name][3])
    for name, app_iters in (("comd", 100), ("sp-mz.C", 400), ("tealeaf", 300)):
        profiled_iters = 3 * DEFAULT_PROFILE_ITERATIONS
        assert profiled_iters / app_iters <= 0.2


def test_decision_latency(benchmark, engine, trained_inflection, report):
    """Warm-knowledge scheduling must be sub-millisecond-scale."""
    clip = ClipScheduler(
        engine, inflection=trained_inflection, knowledge=KnowledgeDB()
    )
    app = get_app("sp-mz.C")
    clip.ensure_knowledge(app)  # warm the KB outside the timer

    decision = benchmark(lambda: clip.schedule(app, 1400.0))
    assert decision.n_nodes >= 1

    t0 = time.perf_counter()
    for _ in range(20):
        clip.schedule(app, 1400.0)
    per_call = (time.perf_counter() - t0) / 20
    report(
        "overhead_decision",
        render_table(
            ["metric", "value"],
            [["warm schedule() latency (s)", per_call]],
            title="Overhead — CLIP decision latency with warm knowledge base",
            float_fmt="{:.6f}",
        ),
    )
    assert per_call < 0.25
