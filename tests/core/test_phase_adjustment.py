"""Tests for phase-by-phase concurrency adjustment (§V-B.1).

The paper observed BT-MZ's ``exch_qbc`` phase stagnates beyond half the
cores and "change[d] the concurrency setting phase-by-phase ... to
increase performance".  The reproduction detects stagnant phases from
the profiled per-phase times and overrides their thread count.
"""

import pytest

from repro.core.knowledge import KnowledgeDB
from repro.core.perfmodel import PerformancePredictor
from repro.core.powermodel import ClipPowerModel
from repro.core.recommend import Recommender
from repro.core.scheduler import ClipScheduler
from repro.workloads.apps import get_app
from repro.workloads.characteristics import Phase, WorkloadCharacteristics


@pytest.fixture()
def limited_phase_app():
    """A linear app with one limited-concurrency phase.

    The main solve scales; the exchange phase is capped at 8 useful
    threads and pays the oversubscription cost beyond them — so the
    global choice is all cores but the exchange wants fewer.
    """
    return WorkloadCharacteristics(
        name="phasey",
        instructions_per_iter=6e10,
        bytes_per_instruction=0.08,
        serial_fraction=0.002,
        sync_cost_s=1e-4,
        ipc_fraction=0.6,
        shared_fraction=0.15,
        iterations=100,
        phases=(
            Phase(name="solve", weight=0.8),
            Phase(name="exchange", weight=0.2, max_useful_threads=8),
        ),
    )


class TestGroundTruthEffect:
    def test_oversubscription_costs_time(self, engine, limited_phase_app):
        from repro.sim.engine import ExecutionConfig

        plain = engine.run(
            limited_phase_app,
            ExecutionConfig(n_nodes=1, n_threads=24, iterations=2),
        )
        overridden = engine.run(
            limited_phase_app,
            ExecutionConfig(
                n_nodes=1, n_threads=24, iterations=2,
                phase_threads={"exchange": 8},
            ),
        )
        assert overridden.performance > plain.performance

    def test_phase_times_surface_in_records(self, engine, limited_phase_app):
        from repro.sim.engine import ExecutionConfig

        r = engine.run(
            limited_phase_app,
            ExecutionConfig(n_nodes=1, n_threads=24, iterations=2),
        )
        names = [n for n, _ in r.nodes[0].phase_times]
        assert names == ["solve", "exchange"]
        assert all(t > 0 for _, t in r.nodes[0].phase_times)

    def test_single_phase_app_has_one_entry(self, engine):
        from repro.sim.engine import ExecutionConfig

        r = engine.run(
            get_app("comd"), ExecutionConfig(n_nodes=1, n_threads=24, iterations=2)
        )
        assert len(r.nodes[0].phase_times) == 1


class TestDetection:
    def test_stagnant_phase_detected(self, engine, profiler, limited_phase_app):
        profile = profiler.profile(limited_phase_app)
        rec = Recommender(
            profile,
            PerformancePredictor(profile, None),
            ClipPowerModel(profile, engine.cluster.spec.node),
        )
        overrides = rec.phase_overrides()
        assert "exchange" in overrides
        assert overrides["exchange"] == 12  # the half-core count
        assert "solve" not in overrides

    def test_single_phase_app_no_overrides(self, engine, profiler):
        profile = profiler.profile(get_app("comd"))
        rec = Recommender(
            profile,
            PerformancePredictor(profile, None),
            ClipPowerModel(profile, engine.cluster.spec.node),
        )
        assert rec.phase_overrides() == {}


class TestSchedulerIntegration:
    def test_decision_carries_override_and_helps(
        self, engine, trained_inflection, limited_phase_app
    ):
        from dataclasses import replace

        clip = ClipScheduler(
            engine, inflection=trained_inflection, knowledge=KnowledgeDB()
        )
        decision, result = clip.run(limited_phase_app, 1800.0, iterations=3)
        # the capped phase flattens the global curve, so the class may
        # come out logarithmic — what matters is that the global choice
        # exceeds the stagnant phase's override
        assert decision.n_threads > 12
        assert decision.phase_threads.get("exchange") == 12

        # the override's benefit is a *time* effect; compare at a
        # pinned frequency so RAPL's activity-dependent frequency
        # response (higher activity -> more power -> lower f under the
        # same cap) does not confound the comparison
        f_nom = engine.cluster.spec.node.socket.f_nominal
        cfg = decision.to_execution_config(iterations=3)
        with_override = engine.run(
            limited_phase_app, replace(cfg, frequency_hz=f_nom)
        )
        without = engine.run(
            limited_phase_app,
            replace(cfg, phase_threads={}, frequency_hz=f_nom),
        )
        assert with_override.performance > without.performance

    def test_override_dropped_when_global_is_lower(
        self, engine, trained_inflection
    ):
        # bt-mz's exchange stagnates at 12; when the global choice is
        # already <= 12 the override is redundant and must not appear
        clip = ClipScheduler(
            engine, inflection=trained_inflection, knowledge=KnowledgeDB()
        )
        decision = clip.schedule(get_app("bt-mz.C"), 1600.0)
        for n in decision.phase_threads.values():
            assert n < decision.n_threads
