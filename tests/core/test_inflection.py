"""Tests for the MLR inflection-point predictor (Fig. 7)."""

import numpy as np
import pytest

from repro.core.inflection import InflectionPredictor
from repro.core.profile import SmartProfiler
from repro.errors import ModelNotFittedError, ProfilingError
from repro.workloads.apps import TABLE2_APPS, get_app
from repro.workloads.model import true_inflection_point, true_scalability_class


class TestFitMechanics:
    def test_unfitted_raises(self, profiler):
        pred = InflectionPredictor()
        profile = profiler.profile(get_app("sp-mz.C"))
        with pytest.raises(ModelNotFittedError):
            pred.predict(profile)

    def test_rejects_mismatched_shapes(self):
        pred = InflectionPredictor()
        with pytest.raises(ProfilingError):
            pred.fit(np.ones((5, 3)), np.ones(4), 24)

    def test_rejects_underdetermined(self):
        pred = InflectionPredictor()
        with pytest.raises(ProfilingError):
            pred.fit(np.ones((3, 11)), np.ones(3), 24)

    def test_exact_fit_on_linear_data(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 4))
        w = np.array([2.0, -1.0, 0.5, 3.0])
        y = X @ w + 12.0
        pred = InflectionPredictor()
        pred.fit(X, y, n_cores=24)
        assert pred.is_fitted

    def test_prediction_floored_to_even(self, trained_inflection, profiler):
        for name in ("sp-mz.C", "bt-mz.C", "tealeaf"):
            profile = profiler.profile(get_app(name))
            np_pred = trained_inflection.predict(profile)
            assert np_pred % 2 == 0
            assert 2 <= np_pred <= 24


class TestPredictionQuality:
    """Fig.-7 level accuracy: predictions land near the true knees."""

    def test_mean_error_small(self, engine, profiler, trained_inflection):
        node = engine.cluster.spec.node
        errors = []
        for app in TABLE2_APPS:
            if true_scalability_class(app, node) == "linear":
                continue
            profile = profiler.profile(app)
            pred = trained_inflection.predict(profile)
            true = true_inflection_point(app, node)
            errors.append(abs(pred - true))
        assert np.mean(errors) <= 3.0, f"per-app |NP error|: {errors}"

    def test_no_catastrophic_outlier(self, engine, profiler, trained_inflection):
        node = engine.cluster.spec.node
        for app in TABLE2_APPS:
            if true_scalability_class(app, node) == "linear":
                continue
            profile = profiler.profile(app)
            pred = trained_inflection.predict(profile)
            true = true_inflection_point(app, node)
            assert abs(pred - true) <= 8, app.name

    def test_fit_from_corpus_skips_profiled_linear(self, engine):
        from repro.core.classify import ScalabilityClass
        from repro.workloads.generator import SyntheticAppGenerator

        gen = SyntheticAppGenerator(engine.cluster.spec.node, seed=11)
        corpus = [gen.draw_class("linear") for _ in range(3)]
        corpus += [gen.draw_class("logarithmic") for _ in range(8)]
        corpus += [gen.draw_class("parabolic") for _ in range(8)]
        profiler = SmartProfiler(engine)
        # the filter must match what the profiler (not ground truth)
        # says — CLIP never sees ground truth
        expected = sum(
            profiler.profile(app).scalability_class is not ScalabilityClass.LINEAR
            for app in corpus
        )
        pred = InflectionPredictor()
        n_rows = pred.fit_from_corpus(corpus, SmartProfiler(engine))
        assert n_rows == expected
        assert n_rows < len(corpus)  # at least some linear members skipped

    def test_all_linear_corpus_rejected(self, engine):
        from repro.workloads.generator import SyntheticAppGenerator

        gen = SyntheticAppGenerator(engine.cluster.spec.node, seed=12)
        corpus = [gen.draw_class("linear") for _ in range(5)]
        pred = InflectionPredictor()
        with pytest.raises(ProfilingError):
            pred.fit_from_corpus(corpus, SmartProfiler(engine))
