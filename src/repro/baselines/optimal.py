"""Oracle: exhaustive configuration search.

The paper repeatedly compares CLIP against "the optimal solution"
found "through an exhaustive search" (Figs. 7–9 discussion).  On the
simulated testbed we can afford the real thing: sweep node counts,
even thread counts, both affinities, and a grid of CPU/DRAM splits;
execute each candidate with a short iteration count; keep the best
*budget-respecting* result.

This is also the upper bound the Conductor-style related work would
approach at much higher search cost — CLIP's claim is getting close
with 2–3 profiling runs.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.baselines.base import PowerBoundedScheduler
from repro.errors import InfeasibleBudgetError
from repro.hw.numa import AffinityKind
from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["OracleScheduler"]

#: Iterations used to score candidates during the search.
SEARCH_ITERATIONS = 2

#: Budget tolerance: a candidate qualifies if the sum of its nodes'
#: steady-state capped power stays within this factor of the budget.
BUDGET_TOLERANCE = 1.0 + 1e-6


class OracleScheduler(PowerBoundedScheduler):
    """Exhaustive search over the configuration space."""

    name = "Optimal"

    def __init__(
        self,
        engine: ExecutionEngine,
        dram_grid_w: tuple[float, ...] | None = None,
        thread_step: int = 2,
    ):
        super().__init__(engine)
        node = engine.cluster.spec.node
        if dram_grid_w is None:
            lo = node.n_sockets * node.socket.memory.p_base_w
            hi = node.p_mem_max_w
            dram_grid_w = tuple(np.linspace(lo + 2.0, hi, 5))
        self._dram_grid = dram_grid_w
        self._thread_step = max(1, thread_step)

    def plan(
        self, app: WorkloadCharacteristics, cluster_budget_w: float
    ) -> ExecutionConfig:
        """Exhaustively search and return the best budget-respecting config."""
        cluster = self.engine.cluster
        n_cores = cluster.spec.node.n_cores
        best_cfg: ExecutionConfig | None = None
        best_perf = -np.inf
        for n_nodes in range(1, cluster.n_nodes + 1):
            node_share = cluster_budget_w / n_nodes
            for dram in self._dram_grid:
                pkg = node_share - dram
                if pkg <= 0:
                    continue
                for n_threads in range(
                    self._thread_step, n_cores + 1, self._thread_step
                ):
                    for kind in AffinityKind:
                        cfg = ExecutionConfig(
                            n_nodes=n_nodes,
                            n_threads=n_threads,
                            affinity=kind,
                            pkg_cap_w=pkg,
                            dram_cap_w=dram,
                            iterations=SEARCH_ITERATIONS,
                        )
                        result = self.engine.run(app, cfg)
                        drawn = sum(
                            r.operating_point.pkg_power_w
                            + r.operating_point.dram_power_w
                            for r in result.nodes
                        )
                        if drawn > cluster_budget_w * BUDGET_TOLERANCE:
                            continue  # cap floor overshot the budget
                        if result.performance > best_perf:
                            best_perf = result.performance
                            best_cfg = cfg
        if best_cfg is None:
            raise InfeasibleBudgetError(
                f"oracle found no budget-respecting configuration at "
                f"{cluster_budget_w:.1f} W"
            )
        return replace(best_cfg, iterations=None)
