"""Load generator for the ``clip-sched serve`` daemon.

Stands a daemon up on a background thread (ephemeral port), then
drives it over real HTTP from concurrent client threads in three
phases and writes ``BENCH_serve.json`` at the repository root:

1. **bare** — ``ClipScheduler.schedule_many`` on a pre-warmed
   scheduler, no daemon involved: the floor the service is measured
   against;
2. **paced** — every worker submits fixed-size bursts at a target
   aggregate rate and records per-burst round-trip latency (is the
   daemon comfortable at the offered load?);
3. **saturated** — the same workers submit back-to-back with no
   pacing: sustained decisions/sec and the warm per-decision service
   cost (wall time / decisions, HTTP + coalescing amortized across
   bursts).

Run standalone with ``python benchmarks/bench_serve.py`` or through
``benchmarks/test_perf_serve.py``, which gates the sustained rate, the
service overhead over bare ``schedule_many``, and a clean budget-audit
ledger under concurrent load.
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.experiments import build_trained_inflection
from repro.core.scheduler import ClipScheduler
from repro.hw.cluster import SimulatedCluster
from repro.serve import SchedulerService, ServeClient, ServeDaemon
from repro.sim.engine import ExecutionEngine
from repro.workloads.apps import get_app

BENCH_PATH = REPO_ROOT / "BENCH_serve.json"

APPS = ("comd", "minimd", "sp-mz.C", "bt-mz.C", "tealeaf", "cloverleaf.128")
BUDGET_W = 1400.0
#: Load-generator shape (the pipeline_perf_loadgen idiom: an aggregate
#: target rate split across worker threads submitting fixed bursts).
TARGET_RATE = 600.0  # decisions/sec offered in the paced phase
THREADS = 4
BATCH_SIZE = 8
PACED_BURSTS = 25  # per thread
SATURATED_BURSTS = 40  # per thread


def _fresh_scheduler() -> ClipScheduler:
    engine = ExecutionEngine(SimulatedCluster.testbed(), seed=42)
    return ClipScheduler(engine, inflection=build_trained_inflection(engine))


def _warm(clip: ClipScheduler) -> None:
    for name in APPS:
        clip.schedule(get_app(name), BUDGET_W)


def _batch(i: int) -> list[str]:
    """Worker *i*'s job mix: a rotating window over the app set."""
    return [APPS[(i + k) % len(APPS)] for k in range(BATCH_SIZE)]


def _bare_baseline() -> dict:
    """Warm ``schedule_many`` cost with no daemon in the way."""
    clip = _fresh_scheduler()
    _warm(clip)
    jobs = [get_app(name) for name in _batch(0)]
    rounds = 50
    start = time.perf_counter()
    for _ in range(rounds):
        clip.schedule_many(jobs, BUDGET_W)
    total_s = time.perf_counter() - start
    n = rounds * len(jobs)
    return {
        "decisions": n,
        "total_s": total_s,
        "per_decision_s": total_s / n,
    }


def _paced_phase(port: int) -> dict:
    """Submit bursts at TARGET_RATE aggregate; measure latency."""
    interval_s = BATCH_SIZE * THREADS / TARGET_RATE

    def worker(i: int) -> list[float]:
        latencies = []
        with ServeClient("127.0.0.1", port) as client:
            next_at = time.perf_counter()
            for _ in range(PACED_BURSTS):
                sleep = next_at - time.perf_counter()
                if sleep > 0:
                    time.sleep(sleep)
                next_at += interval_s
                start = time.perf_counter()
                jobs = client.submit(_batch(i))
                latencies.append(time.perf_counter() - start)
                assert all(j["status"] == "done" for j in jobs)
        return latencies

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        per_thread = [f.result() for f in [pool.submit(worker, i) for i in range(THREADS)]]
    wall_s = time.perf_counter() - start
    latencies = sorted(lat for thread in per_thread for lat in thread)
    decisions = len(latencies) * BATCH_SIZE
    return {
        "target_rate": TARGET_RATE,
        "threads": THREADS,
        "batch_size": BATCH_SIZE,
        "decisions": decisions,
        "wall_s": wall_s,
        "achieved_rate": decisions / wall_s,
        "burst_latency_p50_ms": statistics.median(latencies) * 1e3,
        "burst_latency_p95_ms": latencies[int(0.95 * (len(latencies) - 1))] * 1e3,
        "burst_latency_max_ms": latencies[-1] * 1e3,
    }


def _saturated_phase(port: int) -> dict:
    """Back-to-back bursts from every worker: sustained throughput."""

    def worker(i: int) -> int:
        n = 0
        with ServeClient("127.0.0.1", port) as client:
            for _ in range(SATURATED_BURSTS):
                jobs = client.submit(_batch(i))
                assert all(j["status"] == "done" for j in jobs)
                n += len(jobs)
        return n

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        counts = [f.result() for f in [pool.submit(worker, i) for i in range(THREADS)]]
    wall_s = time.perf_counter() - start
    decisions = sum(counts)
    return {
        "threads": THREADS,
        "batch_size": BATCH_SIZE,
        "decisions": decisions,
        "wall_s": wall_s,
        "decisions_per_s": decisions / wall_s,
        "per_decision_s": wall_s / decisions,
    }


def run_serve_bench() -> dict:
    """Run the three phases and write ``BENCH_serve.json``."""
    bare = _bare_baseline()

    clip = _fresh_scheduler()
    _warm(clip)  # the service is measured on its warm path
    service = SchedulerService(clip, BUDGET_W)
    daemon = ServeDaemon(service, port=0).start_in_thread()
    try:
        paced = _paced_phase(daemon.port)
        saturated = _saturated_phase(daemon.port)
        stats = service.stats()
    finally:
        daemon.shutdown()

    payload = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "apps": list(APPS),
        "budget_w": BUDGET_W,
        "bare_schedule_many": bare,
        "paced": paced,
        "saturated": saturated,
        "service_overhead": saturated["per_decision_s"] / bare["per_decision_s"],
        "daemon": {
            "submitted": stats["submitted"],
            "decided": stats["decided"],
            "failed": stats["failed"],
            "rejected": stats["rejected"],
            "bursts": stats["bursts"],
            "mean_burst": stats["mean_burst"],
            "max_burst": stats["max_burst"],
            "audits": stats["audits"],
            "audit_violations": stats["audit_violations"],
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main() -> int:
    payload = run_serve_bench()
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
