"""Cross-product scheduling matrix.

Every predefined application, scheduled and executed at a grid of
budgets by every method.  Each cell asserts the universal invariants
(budget conservation, feasibility, audit cleanliness) that the pairwise
tests check only in spots — the broad net that catches interactions a
targeted test never would.
"""

import pytest

from repro.analysis.traces import audit_cap_violations
from repro.baselines import CoordinatedScheduler, LowerLimitScheduler
from repro.core.knowledge import KnowledgeDB
from repro.core.profile import SmartProfiler
from repro.core.scheduler import ClipScheduler
from repro.errors import InfeasibleBudgetError
from repro.workloads.apps import all_apps

BUDGETS = (900.0, 1500.0, 2300.0)


@pytest.fixture(scope="module")
def shared(trained_inflection):
    from repro.hw.cluster import SimulatedCluster
    from repro.sim.engine import ExecutionEngine

    engine = ExecutionEngine(SimulatedCluster.testbed(), seed=42)
    profiler = SmartProfiler(engine)
    kb = KnowledgeDB()
    clip = ClipScheduler(
        engine, inflection=trained_inflection,
        knowledge=kb, profiler=profiler,
    )
    coordinated = CoordinatedScheduler(engine, profiler=profiler, knowledge=kb)
    lower = LowerLimitScheduler(engine)
    return engine, clip, coordinated, lower


@pytest.mark.parametrize("budget", BUDGETS)
@pytest.mark.parametrize("app", all_apps(), ids=lambda a: a.name)
class TestClipMatrix:
    def test_clip_cell(self, shared, app, budget):
        engine, clip, _, _ = shared
        decision, result = clip.run(app, budget, iterations=2)
        # budget conservation at the cap level
        assert decision.total_capped_w <= budget * (1 + 1e-9)
        # budget conservation at the drawn-power level
        drawn = sum(
            r.operating_point.pkg_power_w + r.operating_point.dram_power_w
            for r in result.nodes
        )
        assert drawn <= budget * (1 + 1e-6)
        # no cap was programmed below a hardware floor
        assert audit_cap_violations(result) == []
        # parabolic apps never run past their predicted knee
        if decision.inflection_point is not None and (
            decision.scalability_class.value == "parabolic"
        ):
            assert decision.n_threads <= decision.inflection_point
        # the decision is reproducible from the warm knowledge base
        again = clip.schedule(app, budget)
        assert again.n_threads == decision.n_threads
        assert again.n_nodes == decision.n_nodes


@pytest.mark.parametrize("budget", BUDGETS)
@pytest.mark.parametrize("app", all_apps(), ids=lambda a: a.name)
class TestBaselineMatrix:
    def test_coordinated_cell(self, shared, app, budget):
        engine, _, coordinated, _ = shared
        result = coordinated.run(app, budget, iterations=2)
        assert result.performance > 0
        assert result.n_threads_per_node == 24

    def test_lowerlimit_cell(self, shared, app, budget):
        engine, _, _, lower = shared
        try:
            result = lower.run(app, budget, iterations=2)
        except InfeasibleBudgetError:
            pytest.skip("budget below the 180 W floor")
        # never runs a node below the preset floor
        share = budget / result.n_nodes
        assert share >= lower.node_floor_w - 1e-9
