"""Unit and property tests for thread placement."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AffinityError
from repro.hw.numa import AffinityKind, NumaTopology
from repro.hw.specs import haswell_node
from repro.sim.affinity import (
    best_placement,
    make_placement,
    placement_cache_clear,
    placement_cache_info,
    placement_for,
)

TOPO = NumaTopology(haswell_node())


class TestCompact:
    def test_fills_first_socket(self):
        p = make_placement(TOPO, 6, AffinityKind.COMPACT, 0.3)
        assert p.threads_per_socket == (6, 0)
        assert p.sockets_used == 1
        assert p.remote_fraction == pytest.approx(0.0)

    def test_spills_to_second_socket(self):
        p = make_placement(TOPO, 15, AffinityKind.COMPACT, 0.3)
        assert p.threads_per_socket == (12, 3)
        assert p.sockets_used == 2

    def test_full_node(self):
        p = make_placement(TOPO, 24, AffinityKind.COMPACT, 0.3)
        assert p.threads_per_socket == (12, 12)


class TestScatter:
    def test_balances_sockets(self):
        p = make_placement(TOPO, 6, AffinityKind.SCATTER, 0.3)
        assert p.threads_per_socket == (3, 3)
        assert p.sockets_used == 2

    def test_odd_count_near_balanced(self):
        p = make_placement(TOPO, 7, AffinityKind.SCATTER, 0.3)
        assert sorted(p.threads_per_socket) == [3, 4]

    def test_scatter_has_remote_traffic(self):
        p = make_placement(TOPO, 8, AffinityKind.SCATTER, 0.4)
        assert p.remote_fraction == pytest.approx(0.4 * 0.5)

    def test_single_thread_no_remote(self):
        p = make_placement(TOPO, 1, AffinityKind.SCATTER, 0.4)
        assert p.remote_fraction == pytest.approx(0.0)


class TestValidationAndProperties:
    def test_rejects_zero_threads(self):
        with pytest.raises(AffinityError):
            make_placement(TOPO, 0, AffinityKind.COMPACT, 0.3)

    def test_rejects_overcommit(self):
        with pytest.raises(AffinityError):
            make_placement(TOPO, 25, AffinityKind.COMPACT, 0.3)

    @given(
        n=st.integers(min_value=1, max_value=24),
        kind=st.sampled_from(list(AffinityKind)),
        shared=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_placement_invariants(self, n, kind, shared):
        p = make_placement(TOPO, n, kind, shared)
        assert p.n_threads == n
        assert len(set(p.cores)) == n  # no core reused
        assert sum(p.threads_per_socket) == n
        assert all(0 <= c < TOPO.n_cores for c in p.cores)
        assert 0.0 <= p.remote_fraction <= shared + 1e-12

    @given(n=st.integers(min_value=1, max_value=24))
    def test_compact_minimizes_sockets(self, n):
        p = make_placement(TOPO, n, AffinityKind.COMPACT, 0.3)
        assert p.sockets_used == (1 if n <= 12 else 2)

    @given(n=st.integers(min_value=2, max_value=24))
    def test_scatter_uses_both_sockets(self, n):
        p = make_placement(TOPO, n, AffinityKind.SCATTER, 0.3)
        assert p.sockets_used == 2


class TestPlacementCache:
    def test_repeat_is_a_hit_and_shares_the_object(self):
        placement_cache_clear()
        first = make_placement(TOPO, 6, AffinityKind.SCATTER, 0.3)
        info = placement_cache_info()
        assert (info["hits"], info["misses"]) == (0, 1)
        second = make_placement(TOPO, 6, AffinityKind.SCATTER, 0.3)
        assert second is first  # frozen, safe to share
        info = placement_cache_info()
        assert (info["hits"], info["misses"]) == (1, 1)

    def test_key_discriminates_all_inputs(self):
        placement_cache_clear()
        make_placement(TOPO, 6, AffinityKind.SCATTER, 0.3)
        make_placement(TOPO, 7, AffinityKind.SCATTER, 0.3)
        make_placement(TOPO, 6, AffinityKind.COMPACT, 0.3)
        make_placement(TOPO, 6, AffinityKind.SCATTER, 0.4)
        info = placement_cache_info()
        assert info["misses"] == 4 and info["size"] == 4

    def test_placement_for_uses_the_cache(self):
        placement_cache_clear()
        direct = make_placement(TOPO, 4, AffinityKind.SCATTER, 0.3)
        via_rule = placement_for(TOPO, 4, 0.3, memory_intensive=True)
        assert via_rule is direct

    def test_clear_resets(self):
        make_placement(TOPO, 6, AffinityKind.SCATTER, 0.3)
        placement_cache_clear()
        info = placement_cache_info()
        assert info == {"hits": 0, "misses": 0, "size": 0}

    def test_validation_still_precedes_cache(self):
        placement_cache_clear()
        with pytest.raises(AffinityError):
            make_placement(TOPO, 0, AffinityKind.COMPACT, 0.3)
        assert placement_cache_info()["size"] == 0


class TestPolicyRules:
    def test_memory_intensive_scatters(self):
        p = placement_for(TOPO, 4, 0.3, memory_intensive=True)
        assert p.kind is AffinityKind.SCATTER

    def test_compute_bound_small_packs(self):
        p = placement_for(TOPO, 4, 0.3, memory_intensive=False)
        assert p.kind is AffinityKind.COMPACT

    def test_large_job_scatters_regardless(self):
        p = placement_for(TOPO, 20, 0.3, memory_intensive=False)
        assert p.kind is AffinityKind.SCATTER

    def test_best_placement_picks_minimum(self):
        # an evaluator preferring fewer sockets selects compact
        p = best_placement(TOPO, 4, 0.3, evaluate=lambda pl: pl.sockets_used)
        assert p.kind is AffinityKind.COMPACT
        # an evaluator preferring more bandwidth selects scatter
        p = best_placement(TOPO, 4, 0.3, evaluate=lambda pl: -pl.sockets_used)
        assert p.kind is AffinityKind.SCATTER
