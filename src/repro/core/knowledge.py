"""The knowledge database (§IV-B.3).

The Application Execution Module "takes a program and checks whether
the program has been recorded in our knowledge database"; on a miss it
triggers smart profiling and stores the result.  Entries are keyed by
(application name, problem size) — the paper shows the same code with
different inputs (CloverLeaf) can need different coordination.

Entries hold the profile plus the derived artifacts (inflection point)
and can be persisted to / restored from JSON, standing in for the
on-disk database of the real helper tools.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.core.profile import AppProfile, SampleRun
from repro.errors import KnowledgeBaseError, KnowledgeError
from repro.hw.counters import EventCounters
from repro.hw.numa import AffinityKind

__all__ = ["KnowledgeEntry", "KnowledgeDB", "SCHEMA_VERSION"]

#: On-disk schema version written by :meth:`KnowledgeDB.save`.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class KnowledgeEntry:
    """One application's recorded knowledge."""

    profile: AppProfile
    inflection_point: int | None = None

    @property
    def key(self) -> tuple[str, str]:
        """Database key of this entry."""
        return (self.profile.app_name, self.profile.problem_size)


class KnowledgeDB:
    """In-memory knowledge database with JSON persistence.

    The database is shared mutable state — the serve daemon's request
    handlers, the coalescer's decision thread, and periodic
    persistence all touch it concurrently — so every entry-map access
    goes through an internal :class:`threading.RLock`.  Reads on the
    warm path cost one uncontended acquisition; :meth:`save` snapshots
    the entries under the lock and serializes *outside* it, so a save
    can never observe a half-applied :meth:`put` or die with
    "dictionary changed size during iteration".
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._entries: dict[tuple[str, str], KnowledgeEntry] = {}
        self._load_error: KnowledgeBaseError | None = None

    @property
    def load_error(self) -> KnowledgeBaseError | None:
        """Why :meth:`load_or_fresh` fell back to an empty database."""
        return self._load_error

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple[str, str]) -> bool:
        with self._lock:
            return key in self._entries

    def has(self, app_name: str, problem_size: str) -> bool:
        """Whether the application+input has been profiled before."""
        with self._lock:
            return (app_name, problem_size) in self._entries

    def put(self, entry: KnowledgeEntry) -> None:
        """Insert or replace an entry."""
        with self._lock:
            self._entries[entry.key] = entry

    def get(self, app_name: str, problem_size: str) -> KnowledgeEntry:
        """Fetch an entry; raises on a miss."""
        try:
            with self._lock:
                return self._entries[(app_name, problem_size)]
        except KeyError:
            raise KnowledgeBaseError(
                f"no knowledge for {app_name!r} / {problem_size!r}"
            ) from None

    def keys(self) -> tuple[tuple[str, str], ...]:
        """All recorded (name, size) keys."""
        with self._lock:
            return tuple(sorted(self._entries))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the database to a JSON file, atomically.

        The payload is written to a temporary file in the target
        directory and moved into place with :func:`os.replace`, so a
        crash mid-save leaves either the old database or the new one —
        never a truncated file.  Safe to call while other threads keep
        profiling: the entry list is snapshotted under the lock and the
        (slow) JSON serialization runs outside it.
        """
        path = Path(path)
        with self._lock:
            entries = list(self._entries.values())
        payload = {
            "version": SCHEMA_VERSION,
            "entries": [
                {
                    "inflection_point": e.inflection_point,
                    "profile": _profile_to_dict(e.profile),
                }
                for e in entries
            ],
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f, indent=2)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str | Path) -> "KnowledgeDB":
        """Read a database previously written by :meth:`save`.

        Raises a clear :class:`~repro.errors.KnowledgeError` — carrying
        the offending path — for unreadable or truncated files, for
        schema-version mismatches (a database written by an
        incompatible release must not be half-parsed), and for entries
        whose fields no longer deserialize.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise KnowledgeError(
                f"cannot load knowledge DB: {exc}", path=str(path)
            ) from exc
        version = payload.get("version") if isinstance(payload, dict) else None
        if version != SCHEMA_VERSION:
            raise KnowledgeError(
                f"knowledge DB schema version {version!r} is not supported "
                f"(this release reads version {SCHEMA_VERSION}); re-profile "
                f"or convert the database",
                path=str(path),
            )
        db = cls()
        try:
            for raw in payload["entries"]:
                db.put(
                    KnowledgeEntry(
                        profile=_profile_from_dict(raw["profile"]),
                        inflection_point=raw["inflection_point"],
                    )
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise KnowledgeError(
                f"corrupt knowledge DB entry: {exc!r}", path=str(path)
            ) from exc
        return db

    @classmethod
    def load_or_fresh(cls, path: str | Path) -> "KnowledgeDB":
        """Load a database, degrading to an empty one on corruption.

        The graceful-degradation entry point for long-running drains: a
        missing, truncated, or corrupt database costs re-profiling (the
        scheduler falls back to profiling each application from
        scratch) instead of crashing the queue.  The corrupt file is
        left untouched for post-mortem; the error is recorded on the
        returned database as :attr:`load_error`.
        """
        db: KnowledgeDB
        try:
            db = cls.load(path)
        except KnowledgeError as exc:
            db = cls()
            db._load_error = exc
        return db


def _profile_to_dict(profile: AppProfile) -> dict:
    d = asdict(profile)
    for key in ("all_run", "half_run", "confirm_run"):
        run = d[key]
        if run is not None:
            run["affinity"] = run["affinity"].value
    return d


def _run_from_dict(raw: dict | None) -> SampleRun | None:
    if raw is None:
        return None
    raw = dict(raw)
    raw["affinity"] = AffinityKind(raw["affinity"])
    raw["events"] = EventCounters(**raw["events"])
    raw["phase_times"] = tuple(
        (name, t) for name, t in raw.get("phase_times", ())
    )
    return SampleRun(**raw)


def _profile_from_dict(raw: dict) -> AppProfile:
    return AppProfile(
        app_name=raw["app_name"],
        problem_size=raw["problem_size"],
        n_cores=raw["n_cores"],
        peak_node_bandwidth=raw["peak_node_bandwidth"],
        all_run=_run_from_dict(raw["all_run"]),
        half_run=_run_from_dict(raw["half_run"]),
        confirm_run=_run_from_dict(raw["confirm_run"]),
    )
