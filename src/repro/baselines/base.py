"""Common interface for power-bounded schedulers.

A scheduler turns ``(application, cluster power budget)`` into an
:class:`~repro.sim.engine.ExecutionConfig`; the shared :meth:`run`
executes it.  CLIP's own adapter lives in
:mod:`repro.analysis.experiments` so that evaluation code can iterate
over ``[AllIn, LowerLimit, Coordinated, CLIP]`` exactly as the paper's
figures do.
"""

from __future__ import annotations

import abc

from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.sim.trace import RunResult
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["PowerBoundedScheduler"]


class PowerBoundedScheduler(abc.ABC):
    """Base class: plan and run a job under a cluster power budget."""

    #: Display name used in tables and figures.
    name: str = "scheduler"

    def __init__(self, engine: ExecutionEngine):
        self._engine = engine

    @property
    def engine(self) -> ExecutionEngine:
        """The execution engine the scheduler plans for."""
        return self._engine

    @abc.abstractmethod
    def plan(
        self, app: WorkloadCharacteristics, cluster_budget_w: float
    ) -> ExecutionConfig:
        """Decide the execution configuration for the budget."""

    def run(
        self,
        app: WorkloadCharacteristics,
        cluster_budget_w: float,
        iterations: int | None = None,
    ) -> RunResult:
        """Plan and execute the job."""
        config = self.plan(app, cluster_budget_w)
        if iterations is not None:
            from dataclasses import replace

            config = replace(config, iterations=iterations)
        return self._engine.run(app, config)
