"""Tests for the power-bounded job queue."""

import pytest

from repro.core.jobqueue import PowerBoundedJobQueue
from repro.core.knowledge import KnowledgeDB
from repro.core.scheduler import ClipScheduler
from repro.errors import SchedulingError
from repro.workloads.apps import get_app

APPS = ("comd", "sp-mz.C", "stream", "bt-mz.C")


@pytest.fixture()
def queue(engine, trained_inflection):
    clip = ClipScheduler(
        engine, inflection=trained_inflection, knowledge=KnowledgeDB()
    )
    return PowerBoundedJobQueue(clip)


class TestSequential:
    def test_every_job_completes(self, queue):
        apps = [get_app(n) for n in APPS]
        report = queue.drain(apps, 1600.0, iterations=5)
        assert len(report.jobs) == 4
        assert {j.app_name for j in report.jobs} == set(APPS)

    def test_accounting_consistent(self, queue):
        apps = [get_app(n) for n in APPS]
        report = queue.drain(apps, 1600.0, iterations=5)
        # jobs run back to back: each starts when the previous ends
        ordered = sorted(report.jobs, key=lambda j: j.started_at_s)
        assert ordered[0].started_at_s == 0.0
        for prev, cur in zip(ordered, ordered[1:]):
            assert cur.started_at_s == pytest.approx(prev.finished_at_s)
        assert report.makespan_s == pytest.approx(ordered[-1].finished_at_s)
        for j in report.jobs:
            assert j.turnaround_s == pytest.approx(j.wait_s + (j.finished_at_s - j.started_at_s))

    def test_fifo_order(self, queue):
        apps = [get_app(n) for n in APPS]
        report = queue.drain(apps, 1600.0, iterations=5)
        starts = {j.app_name: j.started_at_s for j in report.jobs}
        assert starts["comd"] < starts["sp-mz.C"] < starts["stream"]

    def test_knowledge_reused_across_jobs(self, queue):
        apps = [get_app("comd")] * 3
        queue.drain(apps, 1600.0, iterations=3)
        kb = queue._scheduler.knowledge
        assert len(kb) == 1  # one profile serves all three submissions


class TestCoscheduled:
    def test_every_job_completes(self, queue):
        apps = [get_app(n) for n in APPS]
        report = queue.drain(apps, 1600.0, policy="coscheduled", iterations=5)
        assert {j.app_name for j in report.jobs} == set(APPS)

    def test_jobs_share_batches_when_budget_allows(self, queue):
        apps = [get_app(n) for n in APPS]
        report = queue.drain(apps, 1600.0, policy="coscheduled", iterations=5)
        assert len({j.batch for j in report.jobs}) < len(APPS)

    def test_tight_budget_forces_small_batches(self, queue):
        apps = [get_app(n) for n in APPS]
        generous = queue.drain(
            apps, 2000.0, policy="coscheduled", iterations=3
        )
        tight = queue.drain(apps, 500.0, policy="coscheduled", iterations=3)
        assert len({j.batch for j in tight.jobs}) >= len(
            {j.batch for j in generous.jobs}
        )

    def test_coscheduling_saves_energy_on_this_mix(self, queue):
        apps = [get_app(n) for n in APPS]
        seq = queue.drain(apps, 1600.0, iterations=5)
        cos = queue.drain(apps, 1600.0, policy="coscheduled", iterations=5)
        # fewer node-seconds of idle/base power when jobs share the
        # cluster instead of sweeping over it one at a time
        assert cos.total_energy_j < seq.total_energy_j


class TestValidation:
    def test_empty_queue_rejected(self, queue):
        with pytest.raises(SchedulingError):
            queue.drain([], 1600.0)

    def test_unknown_policy_rejected(self, queue):
        with pytest.raises(SchedulingError):
            queue.drain([get_app("comd")], 1600.0, policy="priority")

    def test_report_summaries(self, queue):
        report = queue.drain([get_app("comd")], 1600.0, iterations=5)
        assert report.mean_turnaround_s > 0
        assert report.throughput_jobs_per_hour > 0
