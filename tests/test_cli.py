"""Tests for the ``clip-sched`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_schedule_args(self):
        args = build_parser().parse_args(["schedule", "comd", "1400"])
        assert args.command == "schedule"
        assert args.app == "comd"
        assert args.budget == pytest.approx(1400.0)
        assert args.mode == "predictive"

    def test_mode_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "comd", "1400", "--mode", "magic"])

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "apps"])
        assert args.seed == 7

    def test_faults_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.command == "faults"
        assert args.policy == "sequential"
        assert args.budget == pytest.approx(1600.0)
        assert not args.json

    def test_faults_policy_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--policy", "chaotic"])

    def test_faults_chaos_flag(self):
        args = build_parser().parse_args(["faults", "--chaos"])
        assert args.chaos

    def test_replay_defaults(self):
        args = build_parser().parse_args(["replay", "--demo"])
        assert args.command == "replay"
        assert args.journal is None
        assert args.demo
        args = build_parser().parse_args(["replay", "some.journal"])
        assert args.journal == "some.journal"
        assert not args.demo


class TestCommands:
    def test_apps_lists_table2(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in ("bt-mz.C", "comd", "tealeaf", "stream"):
            assert name in out

    def test_classify(self, capsys):
        assert main(["classify", "tealeaf"]) == 0
        out = capsys.readouterr().out
        assert "parabolic" in out

    def test_profile(self, capsys):
        assert main(["profile", "stream"]) == 0
        out = capsys.readouterr().out
        assert "logarithmic" in out
        assert "memory intensive" in out

    def test_unknown_app_exits_nonzero(self, capsys):
        assert main(["classify", "nope"]) == 1
        err = capsys.readouterr().err
        assert "unknown app" in err

    def test_schedule_emits_script(self, capsys):
        assert main(["schedule", "comd", "1400"]) == 0
        out = capsys.readouterr().out
        assert "mpirun" in out
        assert "predicted performance" in out

    def test_schedule_json_mode(self, capsys):
        import json

        from repro.core.pipeline import SchedulingDecision

        assert main(["schedule", "comd", "1400", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        decision = SchedulingDecision.from_dict(payload["decision"])
        assert decision.app_name == "comd"
        assert decision.cluster_budget_w == pytest.approx(1400.0)
        assert decision.total_capped_w <= 1400.0 * (1 + 1e-9)
        stages = [s["stage"] for s in payload["trace"]["stages"]]
        assert stages == [
            "profile",
            "classify",
            "inflection",
            "fit_models",
            "allocate",
            "recommend",
            "audit",
        ]
        assert all(s["wall_time_s"] >= 0 for s in payload["trace"]["stages"])

    def test_run_executes(self, capsys):
        assert main(["run", "comd", "1400"]) == 0
        out = capsys.readouterr().out
        assert "nodes x" in out

    def test_faults_scenario_reports_clean_audit(self, capsys):
        import json

        assert main(["faults", "--iterations", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "sequential"
        assert len(payload["jobs"]) == 6
        assert payload["monitor"]["n_violations"] == 0
        assert payload["monitor"]["n_audits"] > 0
        assert len(payload["events"]) >= 2  # the script actually fired

    def test_faults_chaos_reports_guard_and_actuation(self, capsys):
        import json

        assert main(["faults", "--chaos", "--iterations", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["monitor"]["n_violations"] == 0
        assert payload["guard"]["checks"] == len(payload["jobs"])
        assert payload["actuation"]["writes"] > 0

    def test_replay_without_journal_or_demo_fails(self, capsys):
        assert main(["replay"]) == 2

    def test_replay_demo_round_trips(self, capsys):
        import json

        assert main(["replay", "--demo", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["crashed"]
        assert payload["bit_identical"]
        assert payload["job"]["done"]
        assert payload["monitor"]["n_violations"] == 0

    def test_compare_subset(self, capsys):
        assert main(["compare", "1400", "--apps", "comd", "sp-mz.C"]) == 0
        out = capsys.readouterr().out
        assert "CLIP" in out and "All-In" in out
        assert "sp-mz.C" in out


class TestLearnCommand:
    def test_learn_demo_campaign_reports_quality(self, capsys):
        assert main(["learn", "--jobs", "8"]) == 0
        out = capsys.readouterr().out
        assert "Decision quality" in out
        assert "outcomes=8" in out

    def test_learn_json_payload(self, capsys):
        import json

        assert main(["learn", "--jobs", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == "demo campaign"
        assert payload["learning"]["enabled"] is True
        assert payload["learning"]["outcomes"] == 8
        assert payload["cells"], payload
        for cell in payload["cells"]:
            assert cell["n"] >= 1
            assert 0.0 < cell["score"] <= 1.0

    def test_learn_from_saved_knowledge(self, tmp_path, capsys):
        from repro.core.knowledge import KnowledgeDB

        path = tmp_path / "kb.json"
        KnowledgeDB().save(path)
        assert main(["learn", "--knowledge", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no observations recorded" in out


class TestReportCommand:
    def test_report_from_empty_dir(self, tmp_path, capsys):
        assert main(["report", "--results", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Reproduction report" in out
        assert "not yet regenerated" in out
