"""The paper's headline quantitative claims.

* Abstract: "the proposed scheduler outperforms compared methods by
  over 20 % on average for various power budgets";
* §V-C (1): with no power bound, CLIP matches All-In on most apps and
  wins >= 40 % on SP-MZ-style parabolic codes;
* §V-C (4): CLIP defends Coordinated on parabolic applications by up
  to 60 % overall;
* Conclusion: "average improvements are close to 20 % under low power
  budget".
"""

import numpy as np

from repro.analysis.experiments import compare_methods
from repro.analysis.metrics import geometric_mean, improvement_over
from repro.analysis.tables import render_table
from repro.workloads.apps import TABLE2_APPS
from conftest import run_once

BUDGETS_W = (800.0, 1000.0, 1200.0, 1600.0, 2000.0, 2400.0)
BASELINES = ("All-In", "Lower-Limit", "Coordinated")
PARABOLIC = ("sp-mz.C", "miniaero", "tealeaf")


def sweep(engine, schedulers):
    comp = compare_methods(
        engine, list(TABLE2_APPS), list(BUDGETS_W), schedulers, iterations=3
    )
    unbounded = compare_methods(
        engine,
        list(TABLE2_APPS),
        [engine.cluster.p_max_w * 10.0],
        schedulers,
        iterations=3,
    )
    return comp, unbounded


def test_headline_claims(benchmark, engine, schedulers, report):
    comp, unbounded = run_once(benchmark, lambda: sweep(engine, schedulers))

    rows = []
    mean_improvements = []
    for budget in BUDGETS_W:
        imps = []
        for app in TABLE2_APPS:
            clip = comp.cell("CLIP", app.name, budget).relative
            for m in BASELINES:
                cell = comp.cell(m, app.name, budget)
                if cell.feasible and cell.relative > 0:
                    imps.append(clip / cell.relative)
        mean_improvements.append(geometric_mean(imps))
        rows.append([f"{budget:.0f}W", geometric_mean(imps) - 1.0])
    report(
        "headline",
        render_table(
            ["Budget", "CLIP mean improvement over compared methods"],
            rows,
            title="Headline — average CLIP improvement (geomean over apps x methods)",
        ),
    )

    # ">20 % on average for various power budgets": averaged across the
    # compared methods and budgets
    overall = geometric_mean(mean_improvements)
    assert overall >= 1.20, f"overall improvement {overall:.3f}"

    # unbounded: CLIP ~= All-In on most apps, >= 40 % on SP-MZ
    ub = unbounded.cells[0].budget_w
    close = 0
    for app in TABLE2_APPS:
        clip = unbounded.cell("CLIP", app.name, ub).relative
        allin = unbounded.cell("All-In", app.name, ub).relative
        if clip >= 0.9 * allin:
            close += 1
    assert close >= 8, f"CLIP close to unbounded All-In on only {close}/10 apps"
    spmz_gain = improvement_over(
        unbounded.cell("CLIP", "sp-mz.C", ub).relative,
        unbounded.cell("All-In", "sp-mz.C", ub).relative,
    )
    assert spmz_gain >= 0.40, f"SP-MZ unbounded gain {spmz_gain:.2f}"

    # parabolic vs Coordinated: the best case approaches the paper's
    # "up to 60 %"
    parabolic_gains = [
        improvement_over(
            comp.cell("CLIP", name, budget).relative,
            comp.cell("Coordinated", name, budget).relative,
        )
        for name in PARABOLIC
        for budget in BUDGETS_W
    ]
    assert max(parabolic_gains) >= 0.45, max(parabolic_gains)

    # "close to 20 % under low power budget"
    low_mean = geometric_mean(mean_improvements[:3])
    assert low_mean >= 1.15, f"low-budget improvement {low_mean:.3f}"
