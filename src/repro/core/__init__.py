"""CLIP — the paper's contribution.

The modules here implement the framework of Sections III–IV on top of
the simulated substrate, observing only what the real framework could
observe (profiled times, RAPL power, PMU events):

* :mod:`repro.core.classify` — scalability-trend classification,
* :mod:`repro.core.profile` — the Smart Profiling Module,
* :mod:`repro.core.inflection` — MLR inflection-point prediction,
* :mod:`repro.core.perfmodel` — Eq. 1–3 performance predictors,
* :mod:`repro.core.powermodel` — Eq. 4–9 power decomposition and the
  acceptable power range,
* :mod:`repro.core.allocation` — cluster-level node count and per-node
  budgets (Algorithm 1, step 1),
* :mod:`repro.core.coordination` — variability-aware inter-node power
  shifting,
* :mod:`repro.core.recommend` — the Configuration Recommendation
  Module (node-level concurrency, affinity, CPU/DRAM split),
* :mod:`repro.core.knowledge` — the knowledge database,
* :mod:`repro.core.pipeline` — the staged decision pipeline and the
  shared fitted-model bundle cache,
* :mod:`repro.core.scheduler` — Algorithm 1 end to end,
* :mod:`repro.core.execution` — the Application Execution Module.
"""

from repro.core.classify import ScalabilityClass, classify_ratio
from repro.core.profile import AppProfile, SmartProfiler
from repro.core.inflection import InflectionPredictor
from repro.core.perfmodel import PerformancePredictor
from repro.core.powermodel import ClipPowerModel, PowerRange
from repro.core.allocation import ClusterAllocation, ClusterAllocator
from repro.core.coordination import coordinate_power
from repro.core.recommend import NodeConfig, Recommender
from repro.core.knowledge import KnowledgeDB
from repro.core.pipeline import (
    DecisionContext,
    DecisionPipeline,
    DecisionTrace,
    ModelBundle,
    ModelBundleCache,
)
from repro.core.scheduler import ClipScheduler, SchedulingDecision
from repro.core.execution import ApplicationExecutionModule
from repro.core.runtime import PowerBoundedRuntime, RunningJob, SegmentRecord
from repro.core.multijob import JobPlacement, MultiJobCoordinator
from repro.core.jobqueue import CompletedJob, PowerBoundedJobQueue, QueueReport
from repro.core.planner import BudgetPlan, BudgetPlanner

__all__ = [
    "ScalabilityClass",
    "classify_ratio",
    "AppProfile",
    "SmartProfiler",
    "InflectionPredictor",
    "PerformancePredictor",
    "ClipPowerModel",
    "PowerRange",
    "ClusterAllocation",
    "ClusterAllocator",
    "coordinate_power",
    "NodeConfig",
    "Recommender",
    "KnowledgeDB",
    "DecisionContext",
    "DecisionPipeline",
    "DecisionTrace",
    "ModelBundle",
    "ModelBundleCache",
    "ClipScheduler",
    "SchedulingDecision",
    "ApplicationExecutionModule",
    "PowerBoundedRuntime",
    "RunningJob",
    "SegmentRecord",
    "JobPlacement",
    "MultiJobCoordinator",
    "CompletedJob",
    "PowerBoundedJobQueue",
    "QueueReport",
    "BudgetPlan",
    "BudgetPlanner",
]
