#!/usr/bin/env python3
"""Render the paper's key figures as ASCII charts in the terminal.

Draws Fig. 2 (the three scalability trends), Fig. 6 (classification
ratio bars with the 0.7 / 1.0 threshold guides), and a RAPL governor
settling trace — all from live simulation, no plotting stack required.

Run:  python examples/ascii_figures.py
"""

import numpy as np

from repro.analysis.plots import render_bars, render_series
from repro.core.profile import SmartProfiler
from repro.hw import Domain, RaplGovernor, SimulatedCluster
from repro.sim import ExecutionEngine
from repro.workloads import TABLE2_APPS, get_app
from repro.workloads.model import scalability_curve


def fig2(engine) -> None:
    node = engine.cluster.spec.node
    threads = np.arange(2, 25, 2)
    series = {}
    for name in ("ep.C", "bt-mz.C", "sp-mz.C"):
        ns, perfs = scalability_curve(get_app(name), node, n_threads=threads)
        series[name] = perfs / perfs[0]  # speedup over 2 threads
    print(
        render_series(
            list(threads),
            {k: list(v) for k, v in series.items()},
            title="Fig. 2 — speedup vs threads (linear / logarithmic / parabolic)",
            height=14,
            width=64,
        )
    )


def fig6(engine) -> None:
    profiler = SmartProfiler(engine)
    labels, ratios = [], []
    for app in TABLE2_APPS:
        p = profiler.profile(app)
        labels.append(f"{app.name} ({p.scalability_class.value[:3]})")
        ratios.append(p.ratio)
    print()
    print(
        render_bars(
            labels,
            ratios,
            width=56,
            title="Fig. 6 — Perf_half / Perf_all (guides at the 0.7 and 1.0 thresholds)",
            markers={0.7: "linear|log", 1.0: "log|parabolic"},
        )
    )


def governor_trace(engine) -> None:
    node = engine.cluster.node(0)
    node.rapl.set_cap(Domain.PKG, 140.0)
    gov = RaplGovernor(node.rapl, window_s=1.0, interval_s=0.05)
    samples = gov.run(120, [12, 12], 0.95)
    t = [s.t_s for s in samples]
    print()
    print(
        render_series(
            t,
            {
                "power (W)": [s.power_w for s in samples],
                "window avg": [s.window_avg_w for s in samples],
                "limit": [s.limit_w for s in samples],
            },
            title="RAPL governor settling onto a 140 W PKG limit "
            "(all-core compute phase from turbo)",
            height=12,
            width=64,
        )
    )
    node.rapl.clear_caps()


def main() -> None:
    engine = ExecutionEngine(SimulatedCluster.testbed(), seed=42)
    fig2(engine)
    fig6(engine)
    governor_trace(engine)


if __name__ == "__main__":
    main()
