"""Package thermal model and thermal throttling.

Power limits exist partly *because* of heat: the related work the paper
builds on includes temperature-constrained power control (Wang [42])
and thermal-aware management (Hanson [19]).  This module adds the
thermal side of the substrate: a lumped RC model of package temperature
and the PROCHOT-style throttle that preempts RAPL when silicon
overheats.

.. math::

    C \\frac{dT}{dt} = P(t) - \\frac{T - T_{ambient}}{R}

Steady state sits at ``T_amb + P*R``; the default coefficients put an
uncapped 120 W package in the high 70s °C with a 100 °C junction limit,
so ordinary capped operation never throttles — but an aggressive budget
*raise* into a hot room does, which is exactly the scenario
temperature-aware work worries about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SpecError
from repro.units import check_positive

__all__ = ["ThermalSpec", "ThermalModel", "ThermalSample"]


@dataclass(frozen=True)
class ThermalSpec:
    """Lumped thermal parameters of one package + heatsink.

    Attributes
    ----------
    r_c_per_w:
        Junction-to-ambient thermal resistance (°C per watt).
    c_j_per_c:
        Lumped heat capacity (joules per °C) — package plus the part of
        the heatsink on the fast time constant.
    t_ambient_c:
        Inlet air temperature.
    t_junction_max_c:
        PROCHOT trip point.
    t_hysteresis_c:
        Temperature must fall this far below the trip point before the
        throttle releases (prevents trip/release chatter).
    """

    r_c_per_w: float = 0.38
    c_j_per_c: float = 120.0
    t_ambient_c: float = 28.0
    t_junction_max_c: float = 100.0
    t_hysteresis_c: float = 4.0

    def __post_init__(self) -> None:
        check_positive(self.r_c_per_w, "r_c_per_w")
        check_positive(self.c_j_per_c, "c_j_per_c")
        if self.t_junction_max_c <= self.t_ambient_c:
            raise SpecError("junction limit must exceed ambient")
        if self.t_hysteresis_c < 0:
            raise SpecError("hysteresis must be >= 0")

    @property
    def tau_s(self) -> float:
        """Thermal time constant R*C (seconds)."""
        return self.r_c_per_w * self.c_j_per_c

    def steady_state_c(self, power_w: float) -> float:
        """Equilibrium temperature under constant *power_w*."""
        return self.t_ambient_c + power_w * self.r_c_per_w

    def max_sustainable_power_w(self) -> float:
        """Power whose equilibrium sits exactly at the junction limit."""
        return (self.t_junction_max_c - self.t_ambient_c) / self.r_c_per_w


@dataclass(frozen=True)
class ThermalSample:
    """One integration step's state."""

    t_s: float
    temperature_c: float
    power_w: float
    throttled: bool


class ThermalModel:
    """Time-stepped RC integration with PROCHOT hysteresis."""

    def __init__(self, spec: ThermalSpec | None = None):
        self._spec = spec or ThermalSpec()
        self._temp = self._spec.t_ambient_c
        self._throttled = False
        self._t = 0.0

    @property
    def spec(self) -> ThermalSpec:
        """The thermal parameters."""
        return self._spec

    @property
    def temperature_c(self) -> float:
        """Current junction temperature."""
        return self._temp

    @property
    def throttled(self) -> bool:
        """Whether PROCHOT is currently asserted."""
        return self._throttled

    def reset(self, temperature_c: float | None = None) -> None:
        """Return to ambient (or a given temperature) and release PROCHOT."""
        self._temp = (
            temperature_c if temperature_c is not None else self._spec.t_ambient_c
        )
        self._throttled = False
        self._t = 0.0

    def step(self, power_w: float, dt_s: float) -> ThermalSample:
        """Integrate one interval of constant *power_w*.

        Uses the exact exponential solution of the RC equation (stable
        for any ``dt``), then updates the PROCHOT state with
        hysteresis.
        """
        if power_w < 0:
            raise SpecError("power must be >= 0")
        check_positive(dt_s, "dt")
        spec = self._spec
        t_inf = spec.steady_state_c(power_w)
        decay = float(np.exp(-dt_s / spec.tau_s))
        self._temp = t_inf + (self._temp - t_inf) * decay
        self._t += dt_s

        if self._temp >= spec.t_junction_max_c:
            self._throttled = True
        elif self._temp <= spec.t_junction_max_c - spec.t_hysteresis_c:
            self._throttled = False
        return ThermalSample(
            t_s=self._t,
            temperature_c=self._temp,
            power_w=power_w,
            throttled=self._throttled,
        )

    def run(self, power_w: float, duration_s: float, dt_s: float = 1.0):
        """Integrate a constant-power phase; returns every sample."""
        n = max(int(round(duration_s / dt_s)), 1)
        return [self.step(power_w, dt_s) for _ in range(n)]

    def time_to_throttle_s(self, power_w: float) -> float | None:
        """Analytic time until PROCHOT at constant *power_w* from now.

        ``None`` if the equilibrium stays below the junction limit
        (sustainable power).
        """
        spec = self._spec
        t_inf = spec.steady_state_c(power_w)
        if t_inf < spec.t_junction_max_c:
            return None
        if self._temp >= spec.t_junction_max_c:
            return 0.0
        frac = (t_inf - spec.t_junction_max_c) / (t_inf - self._temp)
        return float(-spec.tau_s * np.log(frac))
