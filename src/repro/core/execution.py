"""The Application Execution Module (§IV-B.3).

The user-facing entry point of the framework: takes a program, checks
the knowledge database, triggers smart profiling on a miss, asks the
recommendation pipeline for a configuration, and "creates a script to
launch the job with the execution configuration on a power-bounded
multicore cluster through our job scheduler".

On the simulated testbed the "launch" is an engine run; the launch
script is still rendered (mpirun + OMP environment + RAPL cap
commands) so users can see exactly what the real framework would have
executed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scheduler import ClipScheduler, SchedulingDecision
from repro.sim.trace import RunResult
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["LaunchPlan", "ApplicationExecutionModule"]


@dataclass(frozen=True)
class LaunchPlan:
    """A decision rendered as the job launch the real framework emits."""

    decision: SchedulingDecision
    script: str


class ApplicationExecutionModule:
    """User interface: program in, scheduled (and executed) job out."""

    def __init__(self, scheduler: ClipScheduler):
        self._scheduler = scheduler

    @property
    def scheduler(self) -> ClipScheduler:
        """The underlying CLIP scheduler."""
        return self._scheduler

    def prepare(
        self,
        app: WorkloadCharacteristics,
        cluster_budget_w: float,
        **schedule_kwargs,
    ) -> LaunchPlan:
        """Schedule the job and render its launch script."""
        decision = self._scheduler.schedule(
            app, cluster_budget_w, **schedule_kwargs
        )
        return LaunchPlan(decision=decision, script=render_script(app, decision))

    def execute(
        self,
        app: WorkloadCharacteristics,
        cluster_budget_w: float,
        iterations: int | None = None,
        **schedule_kwargs,
    ) -> tuple[LaunchPlan, RunResult]:
        """Schedule, render, and run the job on the simulated testbed."""
        plan = self.prepare(app, cluster_budget_w, **schedule_kwargs)
        result = self._scheduler._engine.run(
            app, plan.decision.to_execution_config(iterations=iterations)
        )
        return plan, result


def render_script(
    app: WorkloadCharacteristics, decision: SchedulingDecision
) -> str:
    """Render the launch script the real helper tools would emit.

    One RAPL cap command pair per node (budgets differ under
    variability coordination), then the hybrid MPI/OpenMP launch line.
    """
    lines = [
        "#!/bin/sh",
        f"# CLIP launch plan for {app.name} ({app.problem_size})",
        f"# class={decision.scalability_class.value}"
        + (
            f" NP={decision.inflection_point}"
            if decision.inflection_point is not None
            else ""
        ),
        f"# cluster budget {decision.cluster_budget_w:.0f} W, "
        f"allocated {decision.total_capped_w:.0f} W",
    ]
    for i, cfg in enumerate(decision.node_configs):
        # the --gpu flag appears only for ranks with a device grant, so
        # CPU-only scripts stay byte-identical to the pre-GPU emitter
        lines.append(
            f"clip-rapl --node {i} --pkg {cfg.pkg_cap_w:.1f} "
            f"--dram {cfg.dram_cap_w:.1f}"
            + (f" --gpu {cfg.gpu_cap_w:.1f}" if cfg.has_gpu_grant else "")
        )
    cfg = decision.node_configs[0]
    lines.append(
        "mpirun -np {n} --map-by node -x OMP_NUM_THREADS={t} "
        "-x OMP_PROC_BIND={bind} {prog}".format(
            n=decision.n_nodes,
            t=decision.n_threads,
            bind="spread" if cfg.affinity.value == "scatter" else "close",
            prog=app.name,
        )
    )
    return "\n".join(lines) + "\n"
