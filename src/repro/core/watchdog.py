"""Breach detection and self-healing enforcement.

The coordination stack *plans* caps that respect the cluster budget;
this module checks the plan against physical reality.  FastCap-style
systems (PAPERS.md) react when *measured* power violates the bound —
because cap writes get dropped, firmware drifts, and models err — and
the :class:`PowerEnforcementWatchdog` does the same for the
power-bounded runtime:

* after every segment it sums each participating node's meter reading
  (the fallible, possibly lying sensor path) and compares it against
  the job's committed cap total plus a configurable **guard band**;
* on a breach it climbs an escalation ladder of *transactional*
  corrections — (1) re-issue the committed caps through the verified
  write path (repairs dropped/partial writes), (2) re-coordinate at a
  derated budget proportional to the overshoot (absorbs silent drift),
  (3) force an **emergency uniform throttle** to the floor of the
  acceptable range, out-of-band, when re-coordination itself fails;
* every corrective cap set is audited by the shared
  :class:`~repro.core.monitor.BudgetInvariantMonitor`, so the ledger
  shows the correction as well as the breach that motivated it.

:class:`EnforcementGuard` is the queue-side sibling: a lightweight
measured-vs-budget feedback loop that derates the budget handed to
*subsequent* scheduling decisions while breaches persist and relaxes
back to the full budget once enforcement heals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ActuationError, InfeasibleBudgetError
from repro.units import check_fraction

__all__ = [
    "WatchdogObservation",
    "PowerEnforcementWatchdog",
    "EnforcementGuard",
]

#: Default guard band: measured draw may exceed the committed caps by
#: this fraction before the watchdog calls it a breach.  Wide enough to
#: ignore honest sensor jitter, narrow enough to catch real drift.
DEFAULT_GUARD_BAND_FRAC = 0.05

#: Derate clamps: one corrective re-coordination never cuts the budget
#: below ``MIN_DERATE`` of its current value (a wild sensor reading must
#: not collapse the job), nor above ``MAX_DERATE`` (every correction
#: makes real progress).
MIN_DERATE = 0.4
MAX_DERATE = 0.95


@dataclass(frozen=True)
class WatchdogObservation:
    """One post-segment enforcement check.

    ``action`` is ``none`` (within band), ``blind`` (every sensor
    reading lost — nothing to compare), ``reissue`` / ``recoordinate`` /
    ``emergency`` (the correction taken), or ``emergency.hold`` (the
    job is already at the emergency floor and is held there).
    """

    job_index: int
    segment_index: int
    measured_w: float | None
    allowed_w: float
    guard_band_w: float
    breach: bool
    action: str

    def to_dict(self) -> dict:
        """JSON-ready form for reports."""
        return {
            "job_index": self.job_index,
            "segment_index": self.segment_index,
            "measured_w": self.measured_w,
            "allowed_w": self.allowed_w,
            "guard_band_w": self.guard_band_w,
            "breach": self.breach,
            "action": self.action,
        }


class PowerEnforcementWatchdog:
    """Samples measured draw against committed caps after each segment.

    Attach to a runtime (done by the constructor) and it is consulted
    automatically from :meth:`~repro.core.runtime.PowerBoundedRuntime.
    advance`; call :meth:`observe` directly to check a job on demand.

    Parameters
    ----------
    runtime:
        The :class:`~repro.core.runtime.PowerBoundedRuntime` to guard.
    guard_band_frac:
        Allowed relative overshoot before a breach is declared.
    """

    def __init__(self, runtime, guard_band_frac: float = DEFAULT_GUARD_BAND_FRAC):
        check_fraction(guard_band_frac, "guard_band_frac")
        self._runtime = runtime
        self._band = guard_band_frac
        self._observations: list[WatchdogObservation] = []
        self._strikes: dict[int, int] = {}
        self._emergency: set[int] = set()
        runtime.attach_watchdog(self)

    @property
    def guard_band_frac(self) -> float:
        """Allowed relative overshoot before correction kicks in."""
        return self._band

    @property
    def observations(self) -> tuple[WatchdogObservation, ...]:
        """Every enforcement check, in observation order."""
        return tuple(self._observations)

    # ------------------------------------------------------------------

    def _measure(self, job) -> float | None:
        """Sum the job's nodes' sensor readings (``None`` = all lost).

        A node whose reading was dropped is assumed to honour its
        committed cap total — the conservative assumption in the
        no-false-breach direction; a breach is still detected as long
        as *some* sensor sees the overdraw.
        """
        cluster = self._runtime.scheduler.engine.cluster
        total = 0.0
        seen = False
        for rank, node_id in enumerate(job.node_ids):
            reading = cluster.node(node_id).meter.read_capped_power_w()
            if reading is None:
                total += float(sum(job.per_node_caps[rank]))
            else:
                total += float(reading)
                seen = True
        return total if seen else None

    def observe(self, job) -> WatchdogObservation:
        """Check one job's last segment; correct if it breached.

        The bound compared against is the job's *facility budget* —
        the invariant CLIP promises — not the (possibly already
        derated) cap total: a corrective derate plans caps below the
        budget precisely so the drifted enforcement lands back under
        it.  Returns the observation describing what was measured and
        which corrective action (if any) was taken.
        """
        key = self._job_key(job)
        allowed_w = float(job.budget_w)
        band_w = self._band * allowed_w
        measured_w = self._measure(job)
        if measured_w is None:
            action, breach = "blind", False
        elif measured_w <= allowed_w + band_w:
            action, breach = "none", False
            self._strikes[key] = 0
            self._emergency.discard(key)
        else:
            breach = True
            action = self._correct(job, key, measured_w, allowed_w)
        obs = WatchdogObservation(
            job_index=key,
            segment_index=len(job.segments) - 1,
            measured_w=measured_w,
            allowed_w=allowed_w,
            guard_band_w=band_w,
            breach=breach,
            action=action,
        )
        self._observations.append(obs)
        return obs

    def _job_key(self, job) -> int:
        for i, j in enumerate(self._runtime.jobs):
            if j is job:
                return i
        return -1

    def _correct(self, job, key: int, measured_w: float, allowed_w: float) -> str:
        strikes = self._strikes.get(key, 0) + 1
        self._strikes[key] = strikes
        if key in self._emergency:
            # already at the floor: hold it there, out-of-band
            self._runtime.emergency_throttle(job)
            return "emergency.hold"
        if strikes == 1:
            # first strike: assume a lost/partial write and repair it
            try:
                self._runtime.reissue_caps(job)
                return "reissue"
            except ActuationError:
                pass  # write path is wedged; fall through to re-plan
        # persistent overdraw: silent drift — re-plan below the current
        # cap total by the observed overshoot so enforced power lands
        # back under the bound; job.budget_w (the facility bound) stays
        caps_total_w = float(sum(sum(cap) for cap in job.per_node_caps))
        derate = min(MAX_DERATE, max(MIN_DERATE, allowed_w / measured_w))
        try:
            self._runtime.recoordinate(
                job, budget_w=derate * caps_total_w, source="watchdog"
            )
            return "recoordinate"
        except (InfeasibleBudgetError, ActuationError):
            self._runtime.emergency_throttle(job)
            self._emergency.add(key)
            return "emergency"

    # ------------------------------------------------------------------

    def report(self) -> dict:
        """Summary counts plus breach-to-correction latency in segments.

        An *episode* is a maximal run of consecutive breach
        observations of one job; its length is how many segments the
        job ran out of band before a correction brought it back (or
        the trace ended).
        """
        actions: dict[str, int] = {}
        for obs in self._observations:
            actions[obs.action] = actions.get(obs.action, 0) + 1
        episodes: list[int] = []
        open_runs: dict[int, int] = {}
        for obs in self._observations:
            if obs.breach:
                open_runs[obs.job_index] = open_runs.get(obs.job_index, 0) + 1
            elif obs.job_index in open_runs:
                episodes.append(open_runs.pop(obs.job_index))
        episodes.extend(open_runs.values())
        return {
            "observations": len(self._observations),
            "breaches": sum(1 for o in self._observations if o.breach),
            "actions": actions,
            "guard_band_frac": self._band,
            "episodes": len(episodes),
            "max_breach_segments": max(episodes) if episodes else 0,
            "mean_breach_segments": (
                sum(episodes) / len(episodes) if episodes else 0.0
            ),
        }


class EnforcementGuard:
    """Measured-power feedback for the job queue's drain loops.

    The queue cannot re-coordinate a finished job, but it can stop
    trusting the model for the *next* one: after each job (or batch)
    the drain loop reports measured draw vs. the budget in force, and
    while breaches persist the guard derates the budget handed to
    subsequent scheduling decisions, relaxing back once enforcement
    heals.
    """

    def __init__(
        self,
        guard_band_frac: float = DEFAULT_GUARD_BAND_FRAC,
        floor: float = MIN_DERATE,
        relax: float = 0.5,
    ):
        check_fraction(guard_band_frac, "guard_band_frac")
        check_fraction(relax, "relax")
        self._band = guard_band_frac
        self._floor = floor
        self._relax = relax
        self._derate = 1.0
        self._breaches = 0
        self._checks = 0

    @property
    def derate(self) -> float:
        """Current budget multiplier in (0, 1]."""
        return self._derate

    @property
    def breaches(self) -> int:
        """How many observations exceeded budget + band."""
        return self._breaches

    def scheduling_budget(self, budget_w: float) -> float:
        """The budget the next decision should be planned against."""
        return budget_w * self._derate

    def observe(self, measured_w: float, budget_w: float) -> bool:
        """Report one measured draw against the budget then in force."""
        self._checks += 1
        if measured_w > budget_w * (1.0 + self._band):
            self._breaches += 1
            self._derate = max(
                self._floor,
                self._derate * min(MAX_DERATE, budget_w / measured_w),
            )
            return True
        # heal: close half the gap back toward the full budget
        self._derate = min(1.0, self._derate + self._relax * (1.0 - self._derate))
        return False

    def report(self) -> dict:
        """JSON-ready summary of the guard's activity."""
        return {
            "checks": self._checks,
            "breaches": self._breaches,
            "derate": self._derate,
            "guard_band_frac": self._band,
        }
