"""Shared fixtures for the figure/table regeneration benchmarks.

Each benchmark regenerates one table or figure of the paper: it runs
the experiment on the simulated testbed, prints the same rows/series
the paper reports, writes them under ``benchmarks/results/``, and
asserts the paper's qualitative shape (who wins, where the knees fall).
The pytest-benchmark timer wraps the experiment so regressions in the
simulator or scheduler cost are visible too.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.experiments import build_trained_inflection, make_schedulers
from repro.hw.cluster import SimulatedCluster
from repro.sim.batch import RunCache
from repro.sim.engine import ExecutionEngine

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def engine():
    """One shared engine: benchmarks only read aggregate results.

    A shared :class:`RunCache` is attached so repeated candidate
    evaluations across budgets and figures (oracle sweeps, profiler
    samples) are memoized for the whole benchmark session.
    """
    return ExecutionEngine(
        SimulatedCluster.testbed(), seed=42, cache=RunCache()
    )


@pytest.fixture(scope="session")
def trained_inflection(engine):
    """The MLR predictor trained on the default corpus (cached)."""
    return build_trained_inflection(engine)


@pytest.fixture(scope="session")
def schedulers(engine, trained_inflection):
    """The paper's four methods, sharing one profiled knowledge base."""
    return make_schedulers(engine)


@pytest.fixture(scope="session")
def report():
    """Print a rendered experiment table and persist it to disk."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def emit(exp_id: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{exp_id}.txt").write_text(text + "\n")

    return emit


def run_once(benchmark, fn):
    """Run *fn* exactly once under the benchmark timer and return it.

    The experiments are deterministic and some take seconds; pedantic
    mode avoids pytest-benchmark's default multi-round calibration.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
