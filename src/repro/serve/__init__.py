"""Scheduler-as-a-service: the ``clip-sched serve`` daemon.

Production scale means a persistent service, not a library call per
decision.  This package wraps the shared decision pipeline in a
long-running asyncio daemon speaking HTTP/JSON:

* :class:`~repro.serve.service.SchedulerService` — the transport-free
  core: job records, admission control, per-tenant budget quotas, and
  the burst decision path over ``ClipScheduler.schedule_many``;
* :class:`~repro.serve.coalescer.BurstCoalescer` — gathers concurrent
  submissions into bursts and runs them through a single decision
  thread, preserving the warm ~0.1–1.3 ms/job batch path;
* :class:`~repro.serve.http.ServeDaemon` — the asyncio HTTP/1.1
  server: submit-job, query-decision, update-budget, stream-telemetry;
* :class:`~repro.serve.client.ServeClient` — a blocking stdlib client
  used by the load generator, the contract tests, and scripts.
"""

from repro.serve.client import ServeClient
from repro.serve.coalescer import BurstCoalescer
from repro.serve.http import ServeDaemon
from repro.serve.service import JobRecord, SchedulerService, TenantQuota

__all__ = [
    "SchedulerService",
    "TenantQuota",
    "JobRecord",
    "BurstCoalescer",
    "ServeDaemon",
    "ServeClient",
]
