"""Unit tests for workload characteristic records."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.characteristics import (
    CommPattern,
    Phase,
    WorkloadCharacteristics,
)


def make(**kw):
    defaults = dict(
        name="app",
        instructions_per_iter=1e10,
        bytes_per_instruction=0.5,
    )
    defaults.update(kw)
    return WorkloadCharacteristics(**defaults)


class TestValidation:
    def test_minimal_valid(self):
        app = make()
        assert app.bytes_per_iter == pytest.approx(5e9)

    def test_rejects_empty_name(self):
        with pytest.raises(WorkloadError):
            make(name="")

    def test_rejects_zero_instructions(self):
        with pytest.raises(ValueError):
            make(instructions_per_iter=0.0)

    def test_rejects_bad_serial_fraction(self):
        with pytest.raises(ValueError):
            make(serial_fraction=1.5)

    def test_rejects_zero_ipc_fraction(self):
        with pytest.raises(WorkloadError):
            make(ipc_fraction=0.0)

    def test_rejects_negative_sync(self):
        with pytest.raises(ValueError):
            make(sync_cost_s=-1.0)

    def test_rejects_zero_iterations(self):
        with pytest.raises(WorkloadError):
            make(iterations=0)

    def test_rejects_bad_phase_weights(self):
        with pytest.raises(WorkloadError):
            make(phases=(Phase("a", 0.1), Phase("b", 0.1)))

    def test_accepts_unit_phase_weights(self):
        app = make(phases=(Phase("a", 0.5), Phase("b", 0.5)))
        assert len(app.phases) == 2


class TestPhase:
    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            Phase("p", 0.0)

    def test_rejects_bad_max_threads(self):
        with pytest.raises(WorkloadError):
            Phase("p", 0.5, max_useful_threads=0)

    def test_overrides_optional(self):
        p = Phase("p", 0.5, bytes_per_instruction=2.0, sync_cost_s=1e-3)
        assert p.bytes_per_instruction == 2.0
        assert p.sync_cost_s == 1e-3


class TestDerived:
    def test_memory_intensity_flag(self):
        assert make(bytes_per_instruction=2.0).is_memory_intensive
        assert not make(bytes_per_instruction=0.01).is_memory_intensive

    def test_with_iterations(self):
        app = make(iterations=100)
        short = app.with_iterations(3)
        assert short.iterations == 3
        assert short.name == app.name
        assert app.iterations == 100

    def test_effective_phases_default(self):
        phases = make().effective_phases()
        assert len(phases) == 1
        assert phases[0].weight == 1.0

    def test_phase_view_scales_volume(self):
        app = make(
            instructions_per_iter=1e10,
            comm_bytes_per_iter=1e6,
            phases=(Phase("a", 0.25), Phase("b", 0.75)),
        )
        view = app.phase_view(app.phases[0])
        assert view.instructions_per_iter == pytest.approx(2.5e9)
        assert view.comm_bytes_per_iter == pytest.approx(2.5e5)
        assert view.phases == ()
        assert view.name == "app:a"

    def test_phase_view_applies_overrides(self):
        app = make(
            bytes_per_instruction=1.0,
            sync_cost_s=1e-3,
            phases=(Phase("x", 1.0, bytes_per_instruction=3.0, sync_cost_s=2e-3),),
        )
        view = app.phase_view(app.phases[0])
        assert view.bytes_per_instruction == 3.0
        assert view.sync_cost_s == pytest.approx(2e-3)

    def test_phase_view_scales_parent_sync_by_weight(self):
        app = make(sync_cost_s=1e-3, phases=(Phase("x", 0.5), Phase("y", 0.5)))
        view = app.phase_view(app.phases[0])
        assert view.sync_cost_s == pytest.approx(5e-4)

    def test_comm_pattern_default(self):
        assert make().comm_pattern is CommPattern.HALO
