"""Table II — the benchmark list, with *emergent* scalability types.

Regenerates the table with each application's workload pattern and the
scalability class that emerges from the simulated node, which must
match the paper's published column for all ten rows.
"""

from repro.analysis.tables import render_table
from repro.workloads.apps import TABLE2_APPS
from repro.workloads.model import true_scalability_class
from conftest import run_once

PAPER_TYPES = {
    "bt-mz.C": "logarithmic",
    "lu-mz.C": "logarithmic",
    "sp-mz.C": "parabolic",
    "comd": "linear",
    "amg": "linear",
    "miniaero": "parabolic",
    "minimd": "linear",
    "tealeaf": "parabolic",
    "cloverleaf.128": "logarithmic",
    "cloverleaf.16": "logarithmic",
}


def classify_all(node):
    return {a.name: true_scalability_class(a, node) for a in TABLE2_APPS}


def test_table2_benchmarks(benchmark, engine, report):
    node = engine.cluster.spec.node
    emergent = run_once(benchmark, lambda: classify_all(node))

    rows = []
    for app in TABLE2_APPS:
        pattern = "compute/memory" if app.is_memory_intensive else "compute"
        rows.append(
            [
                app.name,
                app.description[:44],
                app.problem_size,
                pattern,
                emergent[app.name],
                PAPER_TYPES[app.name],
            ]
        )
    report(
        "table2",
        render_table(
            ["Benchmark", "Description", "Parameters", "Pattern",
             "Emergent type", "Paper type"],
            rows,
            title="Table II — benchmarks used in this study",
        ),
    )

    for name, emerged in emergent.items():
        assert emerged == PAPER_TYPES[name], name

    # the CloverLeaf pair shows input parameters matter: same code,
    # two rows in the table
    names = [a.name for a in TABLE2_APPS]
    assert sum(n.startswith("cloverleaf") for n in names) == 2
