"""Figure 3 — performance impact of the processor power budget.

The paper caps the CPU power of one node and plots performance per
concurrency for EP (linear, 3a), STREAM (logarithmic, 3b), and SP
(parabolic, 3c), observing:

* 3a — maximum concurrency is optimal for linear applications unless
  the budget is very low;
* 3b — the optimal concurrency of a logarithmic application varies
  with the budget ("using less cores could significantly improve
  performance if the power budget is acceptable yet very limited");
* 3c — the gap between optimal and maximum concurrency *grows* as the
  budget shrinks for parabolic applications.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.sim.engine import ExecutionConfig
from repro.workloads.apps import get_app
from conftest import run_once

PANELS = (("3a", "ep.C"), ("3b", "stream"), ("3c", "sp.C"))
PKG_BUDGETS_W = (70.0, 100.0, 140.0, 180.0, 240.0)
THREADS = (6, 12, 18, 24)
DRAM_W = 30.0


def sweep(engine):
    out = {}
    for _, name in PANELS:
        app = get_app(name)
        for pkg in PKG_BUDGETS_W:
            for n in THREADS:
                r = engine.run(
                    app,
                    ExecutionConfig(
                        n_nodes=1, n_threads=n,
                        pkg_cap_w=pkg, dram_cap_w=DRAM_W, iterations=3,
                    ),
                )
                out[(name, pkg, n)] = r.performance
    return out


def test_fig3_power_budget_impact(benchmark, engine, report):
    grid = run_once(benchmark, lambda: sweep(engine))

    blocks = []
    for panel, name in PANELS:
        rows = [
            [f"{pkg:.0f} W"] + [grid[(name, pkg, n)] for n in THREADS]
            for pkg in PKG_BUDGETS_W
        ]
        blocks.append(
            render_table(
                ["CPU budget"] + [f"n={n}" for n in THREADS],
                rows,
                title=f"Fig. {panel} — {name}: performance vs CPU power budget",
                float_fmt="{:.4f}",
            )
        )
    report("fig3", "\n\n".join(blocks))

    def best_n(name, pkg):
        return max(THREADS, key=lambda n: grid[(name, pkg, n)])

    # 3a: EP keeps max concurrency at every budget except possibly the
    # very lowest
    for pkg in PKG_BUDGETS_W[1:]:
        assert best_n("ep.C", pkg) == 24

    # 3b: STREAM's optimum shifts below 24 at the tightest budget
    assert best_n("stream", PKG_BUDGETS_W[-1]) >= 12
    tight = best_n("stream", PKG_BUDGETS_W[0])
    assert tight <= best_n("stream", PKG_BUDGETS_W[-1])

    # 3c: SP is parabolic — optimal < 24 everywhere, and the
    # optimal-vs-max gap widens as the budget shrinks
    gaps = []
    for pkg in PKG_BUDGETS_W:
        n_star = best_n("sp.C", pkg)
        assert n_star < 24
        gaps.append(grid[("sp.C", pkg, n_star)] / grid[("sp.C", pkg, 24)])
    assert gaps[0] >= gaps[-1] * 0.98
    assert max(gaps) > 1.1
