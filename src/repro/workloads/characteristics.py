"""Workload characteristic records.

A :class:`WorkloadCharacteristics` is the ground-truth description of a
hybrid MPI/OpenMP application: everything the analytic performance
model needs to produce execution times on the simulated testbed.  CLIP
never reads these records — it sees only profiled times, powers, and
event counters, exactly as on real hardware.

The fields map onto the physical effects the paper's Section II
attributes the three scalability classes to:

* ``instructions_per_iter`` / ``bytes_per_instruction`` set the
  roofline position (compute- vs. memory-bound);
* ``serial_fraction`` is the Amdahl term;
* ``sync_cost_s`` is the per-thread synchronization/contention cost
  whose linear-in-threads growth produces the *parabolic* class;
* ``shared_fraction`` controls NUMA remote traffic and therefore the
  mapping preference the smart profiler detects;
* the communication fields shape the cluster-level (MPI) cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import WorkloadError
from repro.units import check_fraction, check_non_negative, check_positive

__all__ = ["CommPattern", "Phase", "WorkloadCharacteristics"]


class CommPattern(enum.Enum):
    """Dominant MPI communication pattern of an application.

    HALO — nearest-neighbour exchange whose message volume shrinks as
    the per-node domain shrinks (surface-to-volume, strong scaling).
    ALLREDUCE — latency-bound collectives growing with log2(nodes).
    NONE — embarrassingly parallel (EP-style).
    """

    HALO = "halo"
    ALLREDUCE = "allreduce"
    NONE = "none"


@dataclass(frozen=True)
class Phase:
    """One phase of a multi-phase application.

    The paper notes BT-MZ's ``exch_qbc`` phase limits its scalability
    and changes concurrency "phase-by-phase" (§V-B.1).  A phase scales
    the parent workload's per-iteration volume by ``weight`` and may
    override the contention and memory intensity.
    """

    name: str
    weight: float
    bytes_per_instruction: float | None = None
    sync_cost_s: float | None = None
    max_useful_threads: int | None = None

    def __post_init__(self) -> None:
        check_positive(self.weight, "phase weight")
        if self.bytes_per_instruction is not None:
            check_non_negative(self.bytes_per_instruction, "bytes_per_instruction")
        if self.sync_cost_s is not None:
            check_non_negative(self.sync_cost_s, "sync_cost_s")
        if self.max_useful_threads is not None and self.max_useful_threads < 1:
            raise WorkloadError("max_useful_threads must be >= 1")


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """Ground-truth description of one application + input.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"sp-mz.C"``.
    instructions_per_iter:
        Total dynamic instructions per outer iteration across the whole
        problem (strong scaling divides this across nodes and threads).
    bytes_per_instruction:
        DRAM traffic per instruction — the arithmetic-intensity inverse
        that positions the code on the roofline.
    serial_fraction:
        Fraction of per-iteration work that cannot be threaded.
    sync_cost_s:
        Synchronization/contention cost *per extra thread per
        iteration* (lock handoffs, barrier spread, zone-copy overhead).
        This is the term that turns scalability parabolic.
    ipc_fraction:
        Achieved fraction of the core's peak IPC for compute phases.
    shared_fraction:
        Fraction of memory accesses hitting the shared working set;
        drives cross-NUMA traffic for scatter placements.
    icache_mpki:
        Instruction-cache misses per kilo-instruction (Table-I event0).
    per_thread_bw_limit:
        Max DRAM bandwidth one thread can extract (B/s) — few threads
        cannot saturate the memory controllers even for STREAM.
    comm_pattern / comm_bytes_per_iter / comm_msgs_per_iter:
        Cluster-level communication shape; ``comm_bytes_per_iter`` is
        the per-node halo volume at the 1-node reference decomposition.
    gpu_fraction:
        Fraction of the parallel per-iteration instructions offloaded
        to an accelerator *when one is present*.  On CPU-only nodes the
        same code runs its host fallback path (fraction treated as 0),
        so one record describes the application on both node classes.
    iterations:
        Outer iterations of a full production run.
    problem_size:
        Human-readable input label (Table II "Parameters" column).
    phases:
        Optional phase decomposition (weights should sum to ~1).
    """

    name: str
    instructions_per_iter: float
    bytes_per_instruction: float
    serial_fraction: float = 0.0
    sync_cost_s: float = 0.0
    ipc_fraction: float = 0.5
    shared_fraction: float = 0.3
    icache_mpki: float = 1.0
    per_thread_bw_limit: float = 9.0e9
    comm_pattern: CommPattern = CommPattern.HALO
    comm_bytes_per_iter: float = 0.0
    comm_msgs_per_iter: int = 6
    gpu_fraction: float = 0.0
    iterations: int = 200
    problem_size: str = "default"
    description: str = ""
    phases: tuple[Phase, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("workload name must be non-empty")
        check_positive(self.instructions_per_iter, "instructions_per_iter")
        check_non_negative(self.bytes_per_instruction, "bytes_per_instruction")
        check_fraction(self.serial_fraction, "serial_fraction")
        check_non_negative(self.sync_cost_s, "sync_cost_s")
        check_fraction(self.ipc_fraction, "ipc_fraction")
        if self.ipc_fraction == 0.0:
            raise WorkloadError("ipc_fraction must be > 0")
        check_fraction(self.shared_fraction, "shared_fraction")
        check_non_negative(self.icache_mpki, "icache_mpki")
        check_positive(self.per_thread_bw_limit, "per_thread_bw_limit")
        check_non_negative(self.comm_bytes_per_iter, "comm_bytes_per_iter")
        if self.comm_msgs_per_iter < 0:
            raise WorkloadError("comm_msgs_per_iter must be >= 0")
        check_fraction(self.gpu_fraction, "gpu_fraction")
        if self.gpu_fraction >= 1.0:
            raise WorkloadError(
                "gpu_fraction must be < 1: some host share always remains"
            )
        if self.iterations < 1:
            raise WorkloadError("iterations must be >= 1")
        if self.phases:
            total = sum(p.weight for p in self.phases)
            if not 0.5 <= total <= 1.5:
                raise WorkloadError(
                    f"phase weights should sum to ~1, got {total:.3f}"
                )

    @property
    def bytes_per_iter(self) -> float:
        """Total DRAM traffic per outer iteration."""
        return self.instructions_per_iter * self.bytes_per_instruction

    @property
    def is_memory_intensive(self) -> bool:
        """Rough one-bit workload-pattern label (Table II column)."""
        return self.bytes_per_instruction >= 0.08

    def with_iterations(self, iterations: int) -> "WorkloadCharacteristics":
        """Copy with a different iteration count (used by profiling)."""
        return replace(self, iterations=iterations)

    def effective_phases(self) -> tuple[Phase, ...]:
        """The phase list, defaulting to a single whole-app phase."""
        if self.phases:
            return self.phases
        return (Phase(name="main", weight=1.0),)

    def phase_view(self, phase: Phase) -> "WorkloadCharacteristics":
        """Characteristics of one phase as a standalone workload.

        The phase inherits everything from the parent except the
        per-iteration volume (scaled by its weight) and any overridden
        fields.
        """
        return replace(
            self,
            name=f"{self.name}:{phase.name}",
            instructions_per_iter=self.instructions_per_iter * phase.weight,
            bytes_per_instruction=(
                phase.bytes_per_instruction
                if phase.bytes_per_instruction is not None
                else self.bytes_per_instruction
            ),
            sync_cost_s=(
                phase.sync_cost_s * phase.weight
                if phase.sync_cost_s is not None
                else self.sync_cost_s * phase.weight
            ),
            comm_bytes_per_iter=self.comm_bytes_per_iter * phase.weight,
            phases=(),
        )
