"""Shared experiment harness for the evaluation benchmarks.

Provides the pieces every figure-regeneration bench needs:

* :class:`ClipSchedulerAdapter` — CLIP behind the common
  :class:`~repro.baselines.base.PowerBoundedScheduler` interface;
* :func:`build_trained_inflection` — a trained (and cached-per-process)
  MLR inflection predictor;
* :func:`make_schedulers` — the paper's four methods, ready to run;
* :func:`compare_methods` — one (apps x budgets) sweep producing the
  relative-performance numbers of Figs. 8–9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import (
    AllInScheduler,
    CoordinatedScheduler,
    LowerLimitScheduler,
    PowerBoundedScheduler,
)
from repro.core.inflection import InflectionPredictor
from repro.core.knowledge import KnowledgeDB
from repro.core.profile import SmartProfiler
from repro.core.scheduler import ClipScheduler
from repro.errors import ClipError, InfeasibleBudgetError
from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.workloads.characteristics import WorkloadCharacteristics
from repro.workloads.suites import training_corpus

__all__ = [
    "ClipSchedulerAdapter",
    "ComparisonCell",
    "MethodComparison",
    "build_trained_inflection",
    "compare_methods",
    "make_schedulers",
]


class ClipSchedulerAdapter(PowerBoundedScheduler):
    """CLIP exposed through the common scheduler interface."""

    name = "CLIP"

    def __init__(self, engine: ExecutionEngine, clip: ClipScheduler):
        super().__init__(engine)
        self._clip = clip

    @property
    def clip(self) -> ClipScheduler:
        """The underlying Algorithm-1 scheduler."""
        return self._clip

    def plan(
        self, app: WorkloadCharacteristics, cluster_budget_w: float
    ) -> ExecutionConfig:
        """Run Algorithm 1 and hand back its execution configuration."""
        decision = self._clip.schedule(app, cluster_budget_w)
        return decision.to_execution_config()


_INFLECTION_CACHE: dict[tuple[str, int, int], InflectionPredictor] = {}


def build_trained_inflection(
    engine: ExecutionEngine,
    n_synthetic: int = 45,
    seed: int = 7,
) -> InflectionPredictor:
    """Train the MLR inflection predictor on the training corpus.

    Training profiles ~60 corpus applications, so the result is cached
    per (primary node class, corpus size, seed) within the process — a
    mixed testbed trains on its slot-0 class, the one profiling samples
    run on.
    """
    primary = engine.cluster.spec.node_specs[0]
    key = (primary.name, n_synthetic, seed)
    if key not in _INFLECTION_CACHE:
        predictor = InflectionPredictor()
        corpus = training_corpus(
            primary, n_synthetic=n_synthetic, seed=seed
        )
        predictor.fit_from_corpus(corpus, SmartProfiler(engine))
        _INFLECTION_CACHE[key] = predictor
    return _INFLECTION_CACHE[key]


def make_schedulers(
    engine: ExecutionEngine,
    include_clip: bool = True,
) -> dict[str, PowerBoundedScheduler]:
    """The evaluation's four methods, in the paper's order."""
    kb = KnowledgeDB()
    profiler = SmartProfiler(engine)
    methods: dict[str, PowerBoundedScheduler] = {
        "All-In": AllInScheduler(engine),
        "Lower-Limit": LowerLimitScheduler(engine),
        "Coordinated": CoordinatedScheduler(engine, profiler=profiler, knowledge=kb),
    }
    if include_clip:
        clip = ClipScheduler(
            engine,
            inflection=build_trained_inflection(engine),
            knowledge=KnowledgeDB(),
            profiler=profiler,
        )
        methods["CLIP"] = ClipSchedulerAdapter(engine, clip)
    return methods


@dataclass(frozen=True)
class ComparisonCell:
    """One (method, app, budget) outcome."""

    method: str
    app_name: str
    budget_w: float
    performance: float
    relative: float
    n_nodes: int
    n_threads: int
    feasible: bool = True


@dataclass(frozen=True)
class MethodComparison:
    """All cells of one comparison sweep plus its reference row."""

    cells: tuple[ComparisonCell, ...]
    reference_perf: dict[str, float]

    def cell(self, method: str, app_name: str, budget_w: float) -> ComparisonCell:
        """Look up one cell."""
        for c in self.cells:
            if (
                c.method == method
                and c.app_name == app_name
                and abs(c.budget_w - budget_w) < 1e-6
            ):
                return c
        raise ClipError(f"no cell for {method}/{app_name}/{budget_w}")

    def by_method(self, method: str) -> tuple[ComparisonCell, ...]:
        """All feasible cells of one method."""
        return tuple(c for c in self.cells if c.method == method and c.feasible)


def compare_methods(
    engine: ExecutionEngine,
    apps: list[WorkloadCharacteristics],
    budgets_w: list[float],
    schedulers: dict[str, PowerBoundedScheduler] | None = None,
    iterations: int = 3,
) -> MethodComparison:
    """Run every (method, app, budget) combination.

    Relative performance is normalized per app to unbounded All-In,
    exactly as §V-C defines it.  Methods that cannot produce a feasible
    plan for a budget get an infeasible cell with zero performance
    (the paper's figures simply show a missing/zero bar there).
    """
    schedulers = schedulers or make_schedulers(engine)
    unbounded = engine.cluster.p_max_w * 10.0
    reference: dict[str, float] = {}
    allin = AllInScheduler(engine)
    for app in apps:
        reference[app.name] = allin.run(
            app, unbounded, iterations=iterations
        ).performance

    cells: list[ComparisonCell] = []
    for app in apps:
        for budget in budgets_w:
            for name, sched in schedulers.items():
                try:
                    result = sched.run(app, budget, iterations=iterations)
                except InfeasibleBudgetError:
                    cells.append(
                        ComparisonCell(
                            method=name,
                            app_name=app.name,
                            budget_w=budget,
                            performance=0.0,
                            relative=0.0,
                            n_nodes=0,
                            n_threads=0,
                            feasible=False,
                        )
                    )
                    continue
                cells.append(
                    ComparisonCell(
                        method=name,
                        app_name=app.name,
                        budget_w=budget,
                        performance=result.performance,
                        relative=result.performance / reference[app.name],
                        n_nodes=result.n_nodes,
                        n_threads=result.n_threads_per_node,
                    )
                )
    return MethodComparison(cells=tuple(cells), reference_perf=reference)
